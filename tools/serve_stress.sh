#!/usr/bin/env bash
# `sereep serve` stress + lifecycle acceptance — the bounded-pool contract
# under real concurrent load, end to end through the REAL binary on
# 127.0.0.1:
#
#   1. N concurrent clients (more than serve-threads + max-connections) all
#      complete with --retries riding out kBusy sheds, every response cmp'd
#      byte-for-byte against the golden CSV — overload shedding loses no
#      correctness, only latency.
#   2. fd stability: the daemon's /proc/PID/fd count returns to its idle
#      baseline after the storm (polled, not sampled once — closes race the
#      check) — the bounded pool leaks no sockets.
#   3. `sereep client --stats` answers a snapshot whose counters moved, and
#      the saturation round really shed (rejected_busy > 0) when pushed past
#      a --max-connections=1 configuration.
#   4. SIGTERM drains: exit code 0, and the port refuses connects after.
#
# Daemon stderr lands in $SERVE_STRESS_LOGDIR (default ./serve-stress-logs)
# so CI can upload it as an artifact on failure.
#
# Usage: tools/serve_stress.sh path/to/sereep [path/to/tests/data]
set -euo pipefail

BIN=${1:?usage: serve_stress.sh path/to/sereep [path/to/tests/data]}
DATA=${2:-"$(dirname "$0")/../tests/data"}
LOGDIR=${SERVE_STRESS_LOGDIR:-serve-stress-logs}
CLIENTS=${SERVE_STRESS_CLIENTS:-24}
mkdir -p "$LOGDIR"
WORK=$(mktemp -d)
PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill -9 -- "-$pid" "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon NAME ARGS... — same discipline as tcp_matrix.sh: own process
# group, wait for the "listening on HOST:PORT" line, set DAEMON_PID and
# DAEMON_PORT as globals (no subshell capture, the PIDS bookkeeping must
# stay in this shell).
start_daemon() {
  local name=$1
  shift
  setsid "$BIN" "$@" > "$WORK/$name.out" 2> "$LOGDIR/$name.err" &
  DAEMON_PID=$!
  PIDS+=("$DAEMON_PID")
  local i
  for i in $(seq 1 200); do
    if grep -q 'listening on' "$WORK/$name.out" 2> /dev/null; then
      DAEMON_PORT=$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/$name.out")
      return 0
    fi
    sleep 0.05
  done
  echo "error: $name never reported a listening port" >&2
  return 1
}

fd_count() {
  ls "/proc/$1/fd" 2> /dev/null | wc -l
}

echo "== storm: $CLIENTS concurrent clients vs a small pool"
# serve-threads=2 max-connections=4: with $CLIENTS clients the pool MUST
# shed some arrivals; --retries turns every shed into an eventual success.
start_daemon serve serve --port=0 --serve-threads=2 --max-connections=4 \
  --request-timeout-ms=10000
SERVE_PID=$DAEMON_PID
SERVE_PORT=$DAEMON_PORT

# Warm the session cache once so the storm measures the pool, not one
# compile amortized across racing builders.
"$BIN" client sweep s27 --connect="127.0.0.1:$SERVE_PORT" \
  --o="$WORK/warm.csv"
cmp "$WORK/warm.csv" "$DATA/sweep_s27.golden.csv"
BASELINE_FDS=$(fd_count "$SERVE_PID")

CLIENT_PIDS=()
for i in $(seq 1 "$CLIENTS"); do
  "$BIN" client sweep s27 --connect="127.0.0.1:$SERVE_PORT" \
    --retries=30 --retry-backoff-ms=20 --o="$WORK/storm-$i.csv" \
    2> "$WORK/storm-$i.err" &
  CLIENT_PIDS+=("$!")
done
FAILED=0
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || FAILED=$((FAILED + 1))
done
if [ "$FAILED" -ne 0 ]; then
  echo "error: $FAILED/$CLIENTS storm clients failed" >&2
  cat "$WORK"/storm-*.err >&2 || true
  exit 1
fi
for i in $(seq 1 "$CLIENTS"); do
  cmp "$WORK/storm-$i.csv" "$DATA/sweep_s27.golden.csv"
done
echo "   ok: $CLIENTS/$CLIENTS clients byte-identical to the golden"

echo "== fd stability after the storm"
# Poll until the count returns to the baseline: the daemon closes shed and
# finished connections asynchronously, a single sample would race them.
STABLE=0
for i in $(seq 1 100); do
  NOW=$(fd_count "$SERVE_PID")
  if [ "$NOW" -le "$BASELINE_FDS" ]; then
    STABLE=1
    break
  fi
  sleep 0.05
done
if [ "$STABLE" -ne 1 ]; then
  echo "error: fd count never returned to baseline ($BASELINE_FDS): $NOW" >&2
  exit 1
fi
echo "   ok: fd count back to baseline ($BASELINE_FDS)"

echo "== metrics snapshot reflects the storm"
"$BIN" client --stats --connect="127.0.0.1:$SERVE_PORT" > "$WORK/stats.txt"
grep -q '^serve_requests_sweep_csv' "$WORK/stats.txt"
SWEEPS=$(awk '$1 == "serve_requests_sweep_csv" {print $2}' "$WORK/stats.txt")
if [ "$SWEEPS" -lt $((CLIENTS + 1)) ]; then
  echo "error: expected >= $((CLIENTS + 1)) sweep requests, saw $SWEEPS" >&2
  cat "$WORK/stats.txt" >&2
  exit 1
fi
echo "   ok: serve_requests_sweep_csv=$SWEEPS"

echo "== forced saturation answers kBusy"
# A 1-thread/1-slot daemon with its worker held by an open idle connection:
# a no-retry client must fail fast (kBusy), a retrying one must get through
# once the holder disconnects.
start_daemon busy serve --port=0 --serve-threads=1 --max-connections=1 \
  --request-timeout-ms=30000
BUSY_PID=$DAEMON_PID
BUSY_PORT=$DAEMON_PORT
"$BIN" client sweep c17 --connect="127.0.0.1:$BUSY_PORT" \
  --o=/dev/null  # cache warm; also proves the daemon serves
# Hold the worker: an open connection that sends nothing. 30 s request
# timeout keeps it bound for the whole check.
exec 9<> "/dev/tcp/127.0.0.1/$BUSY_PORT"
sleep 0.3  # the worker claims the holder
# Fill the one queue slot with a second silent connection.
exec 8<> "/dev/tcp/127.0.0.1/$BUSY_PORT"
sleep 0.3
if "$BIN" client sweep c17 --connect="127.0.0.1:$BUSY_PORT" \
  --o=/dev/null 2> "$WORK/busy.err"; then
  echo "error: a no-retry client succeeded against a saturated daemon" >&2
  exit 1
fi
grep -qi 'capacity' "$WORK/busy.err"
echo "   ok: saturated daemon shed with kBusy"
exec 8>&-
exec 9>&-
"$BIN" client --stats --connect="127.0.0.1:$BUSY_PORT" > "$WORK/busy-stats.txt"
REJECTED=$(awk '$1 == "serve_connections_rejected_busy" {print $2}' \
  "$WORK/busy-stats.txt")
if [ "$REJECTED" -lt 1 ]; then
  echo "error: serve_connections_rejected_busy never moved" >&2
  exit 1
fi
echo "   ok: serve_connections_rejected_busy=$REJECTED"
kill -TERM "$BUSY_PID"
wait "$BUSY_PID" || { echo "error: busy daemon drain exited non-zero" >&2; exit 1; }

echo "== SIGTERM drains to exit 0 and the port closes"
kill -TERM "$SERVE_PID"
DRAIN_OK=0
if wait "$SERVE_PID"; then DRAIN_OK=1; fi
if [ "$DRAIN_OK" -ne 1 ]; then
  echo "error: serve exited non-zero on SIGTERM drain" >&2
  cat "$LOGDIR/serve.err" >&2 || true
  exit 1
fi
grep -q 'drained; final stats' "$LOGDIR/serve.err"
if "$BIN" client sweep c17 --connect="127.0.0.1:$SERVE_PORT" \
  --timeout-ms=2000 --o=/dev/null 2> /dev/null; then
  echo "error: a drained daemon's port still answers" >&2
  exit 1
fi
echo "   ok: drained (exit 0), port refuses connects"

echo "serve_stress: all checks passed"
