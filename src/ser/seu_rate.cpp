#include "src/ser/seu_rate.hpp"

#include <cmath>

namespace sereep {

SeuRateModel::SeuRateModel() {
  flux_ = 56.5 / 3600.0;  // 56.5 neutrons/(cm^2·h) -> per second

  // Relative sensitive areas / critical charges per gate type. Larger
  // stacks have more diffusion area; flip-flops hold state on weaker keeper
  // nodes (lower Q_crit), which is why memory elements dominate SER today —
  // matching the paper's introduction.
  const auto set = [this](GateType t, double area, double qcrit) {
    params_[static_cast<std::size_t>(t)] = GateSeuParams{area, qcrit};
  };
  set(GateType::kInput, 0.6, 18.0);   // pad/driver node
  set(GateType::kBuf, 0.8, 17.0);
  set(GateType::kNot, 0.7, 16.0);
  set(GateType::kAnd, 1.3, 15.0);
  set(GateType::kNand, 1.1, 14.0);
  set(GateType::kOr, 1.3, 15.0);
  set(GateType::kNor, 1.1, 14.0);
  set(GateType::kXor, 1.8, 13.0);
  set(GateType::kXnor, 1.8, 13.0);
  set(GateType::kDff, 2.4, 9.0);
  set(GateType::kConst0, 0.0, 1e9);   // tie cells cannot upset the rail
  set(GateType::kConst1, 0.0, 1e9);
}

double SeuRateModel::rate(const Circuit& circuit, NodeId node) const {
  const GateSeuParams& p = params_[static_cast<std::size_t>(circuit.type(node))];
  if (p.sensitive_area_um2 <= 0.0) return 0.0;
  return flux_ * tech_constant_ * p.sensitive_area_um2 *
         std::exp(-p.qcrit_fc / qs_fc_);
}

}  // namespace sereep
