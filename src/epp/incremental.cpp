#include "src/epp/incremental.hpp"

#include <algorithm>

#include "src/netlist/cone_cluster.hpp"

namespace sereep {

namespace {

/// Per-node "can reach the frontier inside a cone" flags: reach[x] = x ∈ F,
/// or x is non-DFF and some consumer reaches. Descending bucket order makes
/// one pass sufficient — every consumer edge we consult goes to a strictly
/// higher bucket (a gate sits above its fanins, a DFF one above its D pin),
/// and DFF fanout edges, the only downhill ones, are never consulted.
std::vector<std::uint8_t> frontier_reach(const CompiledCircuit& circuit,
                                         std::span<const NodeId> frontier) {
  const std::size_t n = circuit.node_count();
  std::vector<std::uint8_t> reach(n, 0);
  for (NodeId f : frontier) reach[f] = 1;

  // Counting sort by bucket level (O(V), reused pass shape from the planner).
  std::vector<std::uint32_t> start(circuit.bucket_count() + 1, 0);
  for (NodeId id = 0; id < n; ++id) ++start[circuit.bucket_level(id) + 1];
  for (std::size_t b = 1; b < start.size(); ++b) start[b] += start[b - 1];
  std::vector<NodeId> order(n);
  {
    std::vector<std::uint32_t> cursor = start;
    for (NodeId id = 0; id < n; ++id) {
      order[cursor[circuit.bucket_level(id)]++] = id;
    }
  }

  for (std::size_t i = n; i-- > 0;) {
    const NodeId id = order[i];
    if (reach[id] != 0 || circuit.is_dff(id)) continue;
    for (NodeId consumer : circuit.fanout(id)) {
      if (reach[consumer] != 0) {
        reach[id] = 1;
        break;
      }
    }
  }
  return reach;
}

}  // namespace

std::vector<NodeId> downstream_closure(const CompiledCircuit& circuit,
                                       std::span<const NodeId> seeds) {
  std::vector<std::uint8_t> seen(circuit.node_count(), 0);
  std::vector<NodeId> stack;
  for (NodeId s : seeds) {
    if (seen[s] == 0) {
      seen[s] = 1;
      stack.push_back(s);
    }
  }
  std::vector<NodeId> out;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // A non-seed DFF would stop the walk (observation point), but a DFF SEED
    // must not expand either: only its D pin or flags changed — its output
    // still carries the same cycle-start constant, so nothing downstream of
    // the Q pin moved. Cheapest correct rule: never expand through DFFs
    // (seed DFFs are in the closure themselves, which is all that matters).
    if (circuit.is_dff(id)) continue;
    for (NodeId consumer : circuit.fanout(id)) {
      if (seen[consumer] == 0) {
        seen[consumer] = 1;
        stack.push_back(consumer);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> affected_site_mask(const CompiledCircuit& circuit,
                                             std::span<const NodeId> frontier,
                                             std::span<const NodeId> sites,
                                             const ConeClusterPlanner* bloom) {
  std::vector<std::uint8_t> mask(sites.size(), 0);
  if (frontier.empty()) return mask;
  const std::vector<std::uint8_t> reach = frontier_reach(circuit, frontier);

  FrontierSignature fsig;
  const bool prefilter =
      bloom != nullptr &&
      (fsig = frontier_signature(*bloom, frontier)).exhaustive;

  for (std::size_t i = 0; i < sites.size(); ++i) {
    const NodeId s = sites[i];
    if (prefilter && (bloom->sink_signature(s) & fsig.bits) == 0) {
      continue;  // provably disjoint sink sets => cone cannot touch F
    }
    if (reach[s] != 0) {
      mask[i] = 1;
    } else if (circuit.is_dff(s)) {
      // An upset at the FF itself DOES propagate out of the Q pin, so the
      // site's cone continues through its fanout even though reach[] stopped
      // there for every other cone.
      for (NodeId consumer : circuit.fanout(s)) {
        if (reach[consumer] != 0) {
          mask[i] = 1;
          break;
        }
      }
    }
  }
  return mask;
}

FrontierSignature frontier_signature(const ConeClusterPlanner& planner,
                                     std::span<const NodeId> frontier) {
  FrontierSignature out;
  for (NodeId f : frontier) {
    const std::uint64_t sig = planner.sink_signature(f);
    out.bits |= sig;
    if (sig == 0) out.exhaustive = false;
  }
  return out;
}

std::vector<std::uint32_t> bloom_affected_clusters(
    const ConeClusterPlanner& planner, std::span<const NodeId> sites,
    std::span<const ConeCluster> clusters, std::span<const NodeId> frontier) {
  const FrontierSignature fsig = frontier_signature(planner, frontier);
  std::vector<std::uint32_t> out;
  for (std::uint32_t c = 0; c < clusters.size(); ++c) {
    if (!fsig.exhaustive) {
      out.push_back(c);  // a zero-signature frontier node defeats the filter
      continue;
    }
    std::uint64_t cluster_sig = 0;
    for (std::uint32_t member : clusters[c].members) {
      cluster_sig |= planner.sink_signature(sites[member]);
    }
    if ((cluster_sig & fsig.bits) != 0) out.push_back(c);
  }
  return out;
}

}  // namespace sereep
