// M1: google-benchmark microbenchmarks of the hot kernels:
//   - per-node EPP (cone extraction + propagation)
//   - whole-circuit Parker-McCluskey SP pass
//   - bit-parallel simulation throughput
//   - fault-injection per site
//   - Table-1 gate rules (closed form vs fold vs brute force)
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "src/epp/epp_engine.hpp"
#include "src/epp/gate_rules.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/sim/simulator.hpp"
#include "src/sigprob/signal_prob.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sereep;

const Circuit& circuit_for(const std::string& name) {
  static std::map<std::string, Circuit> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, make_iscas89_like(name)).first;
  }
  return it->second;
}

void BM_ParkerMcCluskeySp(benchmark::State& state) {
  const Circuit& c = circuit_for("s953");
  for (auto _ : state) {
    benchmark::DoNotOptimize(parker_mccluskey_sp(c));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.node_count()));
}
BENCHMARK(BM_ParkerMcCluskeySp);

void BM_EppPerNode(benchmark::State& state) {
  const Circuit& c = circuit_for("s1196");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine engine(c, sp);
  const auto sites = error_sites(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.p_sensitized(sites[i % sites.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EppPerNode);

void BM_EppAllNodes(benchmark::State& state) {
  const Circuit& c = circuit_for("s953");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine engine(c, sp);
  const auto sites = error_sites(c);
  for (auto _ : state) {
    double acc = 0;
    for (NodeId s : sites) acc += engine.p_sensitized(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sites.size()));
}
BENCHMARK(BM_EppAllNodes);

void BM_BitParallelEval(benchmark::State& state) {
  const Circuit& c = circuit_for("s1423");
  BitParallelSimulator sim(c);
  Rng rng(1);
  sim.randomize_sources(rng);
  for (auto _ : state) {
    sim.eval();
    benchmark::DoNotOptimize(sim.values().data());
  }
  // 64 vectors per eval pass.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BitParallelEval);

void BM_FaultInjectionPerSite(benchmark::State& state) {
  const Circuit& c = circuit_for("s953");
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = static_cast<std::size_t>(state.range(0));
  const auto sites = error_sites(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fi.run_site(sites[i % sites.size()], opt));
    ++i;
  }
}
BENCHMARK(BM_FaultInjectionPerSite)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_GateRuleClosedForm(benchmark::State& state) {
  Rng rng(3);
  std::vector<Prob4> ins(static_cast<std::size_t>(state.range(0)));
  for (auto& d : ins) {
    d = Prob4::off_path(rng.uniform());
    d.p[2] = d.p[0] * 0.25;
    d.p[0] *= 0.75;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob4_closed_form(GateType::kAnd, ins));
  }
}
BENCHMARK(BM_GateRuleClosedForm)->Arg(2)->Arg(4)->Arg(8);

void BM_GateRuleFold(benchmark::State& state) {
  Rng rng(3);
  std::vector<Prob4> ins(static_cast<std::size_t>(state.range(0)));
  for (auto& d : ins) {
    d = Prob4::off_path(rng.uniform());
    d.p[2] = d.p[0] * 0.25;
    d.p[0] *= 0.75;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob4_fold(GateType::kAnd, ins));
  }
}
BENCHMARK(BM_GateRuleFold)->Arg(2)->Arg(4)->Arg(8);

void BM_GateRuleEnumerate(benchmark::State& state) {
  Rng rng(3);
  std::vector<Prob4> ins(static_cast<std::size_t>(state.range(0)));
  for (auto& d : ins) {
    d = Prob4::off_path(rng.uniform());
    d.p[2] = d.p[0] * 0.25;
    d.p[0] *= 0.75;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob4_enumerate(GateType::kAnd, ins));
  }
}
BENCHMARK(BM_GateRuleEnumerate)->Arg(2)->Arg(4)->Arg(8);

void BM_ConeExtraction(benchmark::State& state) {
  const Circuit& c = circuit_for("s1238");
  ConeExtractor ex(c);
  const auto sites = error_sites(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.extract(sites[i % sites.size()]).on_path.size());
    ++i;
  }
}
BENCHMARK(BM_ConeExtraction);

}  // namespace
