#include "src/sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"

namespace sereep {
namespace {

TEST(FaultInjection, InverterChainAlwaysPropagates) {
  // Any flip on a fanout-free inverter chain reaches the PO with P = 1.
  Circuit c;
  NodeId prev = c.add_input("a");
  for (int i = 0; i < 6; ++i) {
    prev = c.add_gate(GateType::kNot, "n" + std::to_string(i), {prev});
  }
  c.mark_output(prev);
  c.finalize();

  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 256;
  for (NodeId site = 0; site < c.node_count(); ++site) {
    const McSiteResult r = fi.run_site(site, opt);
    EXPECT_DOUBLE_EQ(r.probability(), 1.0) << "site " << c.node(site).name;
  }
}

TEST(FaultInjection, BlockedByConstant) {
  // g = AND(a, const0): flips on `a` can never reach the PO.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId z = c.add_const("zero", false);
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, z});
  c.mark_output(g);
  c.finalize();

  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 256;
  EXPECT_DOUBLE_EQ(fi.run_site(a, opt).probability(), 0.0);
}

TEST(FaultInjection, TwoInputAndMatchesAnalytic) {
  // Error on input a of g = AND(a, b) propagates iff b = 1: P = SP(b) = 0.5.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, b});
  c.mark_output(g);
  c.finalize();

  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 1 << 16;
  EXPECT_NEAR(fi.run_site(a, opt).probability(), 0.5, 0.02);
}

TEST(FaultInjection, SiteAtPoIsAlwaysDetected) {
  const Circuit c = make_c17();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 128;
  EXPECT_DOUBLE_EQ(fi.run_site(*c.find("22"), opt).probability(), 1.0);
}

TEST(FaultInjection, DffStateUpsetIsAlwaysAnError) {
  const Circuit c = make_s27();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 128;
  for (NodeId ff : c.dffs()) {
    EXPECT_DOUBLE_EQ(fi.run_site(ff, opt).probability(), 1.0)
        << c.node(ff).name;
  }
}

TEST(FaultInjection, DeterministicUnderSeed) {
  const Circuit c = make_iscas89_like("s298");
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 512;
  opt.seed = 1234;
  const double p1 = fi.run_site(40, opt).probability();
  const double p2 = fi.run_site(40, opt).probability();
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(FaultInjection, VectorCountRoundsUpTo64) {
  const Circuit c = make_c17();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 100;  // -> 128
  const McSiteResult r = fi.run_site(0, opt);
  EXPECT_EQ(r.vectors, 128u);
}

TEST(FaultInjection, XorMaskingNeverBlocks) {
  // Through an XOR, an input flip always flips the output: P = 1 regardless
  // of the other input.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId x = c.add_gate(GateType::kXor, "x", {a, b});
  c.mark_output(x);
  c.finalize();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 256;
  EXPECT_DOUBLE_EQ(fi.run_site(a, opt).probability(), 1.0);
}

TEST(FaultInjection, ReconvergentExactCancellation) {
  // y = XOR(a, a) via two branches: x1 = BUFF(a), x2 = BUFF(a),
  // y = XOR(x1, x2) = 0 always. A flip on `a` flips both XOR inputs and
  // cancels: EPP(a) = 0. Classic polarity-cancellation case.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId x1 = c.add_gate(GateType::kBuf, "x1", {a});
  const NodeId x2 = c.add_gate(GateType::kBuf, "x2", {a});
  const NodeId y = c.add_gate(GateType::kXor, "y", {x1, x2});
  c.mark_output(y);
  c.finalize();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 256;
  EXPECT_DOUBLE_EQ(fi.run_site(a, opt).probability(), 0.0);
}

TEST(FaultInjection, PerSinkProbabilitiesSumConsistently) {
  const Circuit c = make_c17();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 4096;
  const NodeId site = *c.find("11");
  const auto per_sink = fi.per_sink_probability(site, opt);
  ASSERT_EQ(per_sink.size(), 2u);
  const McSiteResult any = fi.run_site(site, opt);
  // P(any) <= sum of per-sink; P(any) >= max per-sink (union bound).
  const double max_p = std::max(per_sink[0], per_sink[1]);
  const double sum_p = per_sink[0] + per_sink[1];
  EXPECT_GE(any.probability() + 1e-9, max_p);
  EXPECT_LE(any.probability() - 1e-9, sum_p);
}

TEST(ScalarBaseline, AgreesWithBitParallelOnDeterministicCases) {
  // Cases with probability exactly 0 or 1 must agree exactly.
  Circuit c;
  NodeId prev = c.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = c.add_gate(GateType::kNot, "n" + std::to_string(i), {prev});
  }
  c.mark_output(prev);
  c.finalize();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 64;
  for (NodeId site = 0; site < c.node_count(); ++site) {
    EXPECT_DOUBLE_EQ(fi.run_site_scalar(site, opt).probability(), 1.0);
  }
}

TEST(ScalarBaseline, StatisticallyMatchesBitParallel) {
  const Circuit c = make_s27();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 8192;
  for (NodeId site : subsample_sites(error_sites(c), 8)) {
    const double fast = fi.run_site(site, opt).probability();
    const double scalar = fi.run_site_scalar(site, opt).probability();
    EXPECT_NEAR(fast, scalar, 0.04) << c.node(site).name;
  }
}

TEST(ScalarBaseline, DffSiteAlwaysError) {
  const Circuit c = make_s27();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 64;
  for (NodeId ff : c.dffs()) {
    EXPECT_DOUBLE_EQ(fi.run_site_scalar(ff, opt).probability(), 1.0);
  }
}

TEST(ScalarBaseline, PrimaryInputSite) {
  // Flip on input `a` of g = AND(a, b): detection iff b = 1.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, b});
  c.mark_output(g);
  c.finalize();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 1 << 14;
  EXPECT_NEAR(fi.run_site_scalar(a, opt).probability(), 0.5, 0.03);
}

TEST(ErrorSites, CountsAllUpsettableNodes) {
  const Circuit c = make_s27();
  // 4 PI + 3 DFF + 10 gates = 17 sites (constants excluded; none here).
  EXPECT_EQ(error_sites(c).size(), 17u);
}

TEST(SubsampleSites, EvenSpacingAndBounds) {
  std::vector<NodeId> sites(100);
  for (NodeId i = 0; i < 100; ++i) sites[i] = i;
  const auto picked = subsample_sites(sites, 10);
  ASSERT_EQ(picked.size(), 10u);
  EXPECT_EQ(picked.front(), 0u);
  EXPECT_EQ(picked.back(), 90u);
  EXPECT_EQ(subsample_sites(sites, 0).size(), 100u);
  EXPECT_EQ(subsample_sites(sites, 500).size(), 100u);
}

}  // namespace
}  // namespace sereep
