// Sharded multi-process sweep engine — planner, protocol, supervisor and
// end-to-end equivalence + failure-contract tests.
//
// The "sharded" tier joins the oracle hierarchy with the same contract as
// every other engine: bit-for-bit equality (EXPECT_EQ, no tolerance) with
// the batched engine it delegates to — sharding only partitions work across
// `sereep worker` processes (SEREEP_CLI_PATH, the real CLI binary built by
// this tree). The failure half of the contract matters just as much: under
// the default fail policy a worker that dies, truncates its stream, or
// miscounts its results must abort the sweep with a diagnostic naming the
// shard — silent partial sweeps are the one outcome these tests exist to
// forbid. Under the retry/degrade policies the supervisor must RECOVER from
// every fault the SEREEP_FAULT_PLAN harness (src/epp/fault_plan.hpp) can
// inject — death at any protocol phase, hangs past the progress deadline,
// corrupt frames — and the recovered sweep must still be bit-identical,
// with every recovery visible in Diagnostics and every spawned worker
// reaped (workers_reaped == workers_spawned, the wait-hygiene assertion).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sereep/sereep.hpp"
#include "src/artifact/compiled_artifact.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/epp/shard_plan.hpp"
#include "src/epp/shard_protocol.hpp"
#include "src/epp/sharded_epp.hpp"
#include "src/netlist/bench_io.hpp"
#include "src/netlist/generator.hpp"
#include "tests/epp/site_epp_testutil.hpp"

namespace sereep {
namespace {

// ---- shard planner ---------------------------------------------------------

std::vector<ConeCluster> toy_clusters(
    std::initializer_list<std::pair<std::vector<std::uint32_t>, double>>
        spec) {
  std::vector<ConeCluster> out;
  for (const auto& [members, mass] : spec) {
    out.push_back({.members = members, .mass = mass});
  }
  return out;
}

TEST(ShardPlan, EveryMemberLandsInExactlyOneShard) {
  const auto clusters = toy_clusters(
      {{{0, 1, 2}, 9.0}, {{3, 4}, 7.0}, {{5}, 5.0}, {{6}, 3.0}, {{7}, 1.0}});
  const std::vector<Shard> shards = plan_shards(clusters, 3);
  ASSERT_EQ(shards.size(), 3u);
  std::vector<int> seen(8, 0);
  for (const Shard& s : shards) {
    for (std::uint32_t m : s.members) ++seen[m];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardPlan, LptGreedyBalancesByMass) {
  // Masses 9, 7, 5, 3, 1 over two shards: LPT gives {9, 3, 1} vs {7, 5}.
  const auto clusters = toy_clusters(
      {{{0}, 9.0}, {{1}, 7.0}, {{2}, 5.0}, {{3}, 3.0}, {{4}, 1.0}});
  const std::vector<Shard> shards = plan_shards(clusters, 2);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_DOUBLE_EQ(shards[0].mass, 13.0);
  EXPECT_DOUBLE_EQ(shards[1].mass, 12.0);
  EXPECT_EQ(shards[0].members, (std::vector<std::uint32_t>{0, 3, 4}));
  EXPECT_EQ(shards[1].members, (std::vector<std::uint32_t>{1, 2}));
}

TEST(ShardPlan, ClustersAreNeverSplit) {
  const auto clusters = toy_clusters({{{0, 1, 2, 3}, 4.0}, {{4, 5}, 2.0}});
  for (unsigned n : {2u, 3u, 8u}) {
    const std::vector<Shard> shards = plan_shards(clusters, n);
    ASSERT_EQ(shards.size(), 2u) << n;  // empties dropped
    EXPECT_EQ(shards[0].members.size(), 4u);
    EXPECT_EQ(shards[1].members.size(), 2u);
  }
}

TEST(ShardPlan, DeterministicAndEdgeCases) {
  const auto clusters = toy_clusters(
      {{{0}, 2.0}, {{1}, 2.0}, {{2}, 2.0}});
  const auto a = plan_shards(clusters, 2);
  const auto b = plan_shards(clusters, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
  }
  EXPECT_TRUE(plan_shards({}, 4).empty());
  const auto one = plan_shards(clusters, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].members.size(), 3u);
}

// ---- wire protocol ---------------------------------------------------------

TEST(ShardProtocol, JobRoundTripsExactly) {
  ShardJob job;
  job.epp.track_polarity = false;
  job.epp.electrical_survival = 0.97251;
  job.threads = 7;
  job.simd_mode = 2;
  job.p_only = true;
  job.fingerprint = {.nodes = 12345, .digest = 0x1122334455667788};
  job.sp = {0.0, 1.0, 0.5, 0.123456789012345678, 1e-300};
  job.spawn = 41;
  job.sites = {3, 1, 4, 1'000'000};
  const ShardJob back = decode_job(encode_job(job));
  EXPECT_EQ(back.epp.track_polarity, job.epp.track_polarity);
  EXPECT_EQ(back.epp.electrical_survival, job.epp.electrical_survival);
  EXPECT_EQ(back.threads, job.threads);
  EXPECT_EQ(back.simd_mode, job.simd_mode);
  EXPECT_EQ(back.p_only, job.p_only);
  EXPECT_EQ(back.fingerprint, job.fingerprint);
  EXPECT_EQ(back.sp, job.sp);
  EXPECT_EQ(back.spawn, job.spawn);
  EXPECT_EQ(back.sites, job.sites);
}

TEST(ShardProtocol, HelloAndProgressRoundTrip) {
  const NetlistFingerprint fp{.nodes = 123, .digest = 0xdeadbeefcafebabe};
  EXPECT_EQ(decode_hello(encode_hello(fp)), fp);
  EXPECT_EQ(decode_progress(encode_progress(77)), 77u);
  // A progress payload is half a hello payload — size confusion must throw,
  // not read garbage.
  EXPECT_THROW((void)decode_hello(encode_progress(1)), std::runtime_error);
}

TEST(ShardProtocol, FingerprintsIdentifyCircuits) {
  // Same circuit -> same fingerprint (what a matching worker echoes);
  // different circuits -> different fingerprints (what the handshake
  // rejects). to_string is the diagnostic surface, so it must carry the
  // node count.
  EXPECT_EQ(netlist_fingerprint(make_c17()), netlist_fingerprint(make_c17()));
  EXPECT_FALSE(netlist_fingerprint(make_c17()) ==
               netlist_fingerprint(make_s27()));
  const std::string text = to_string(netlist_fingerprint(make_c17()));
  EXPECT_NE(text.find("nodes"), std::string::npos) << text;
  EXPECT_NE(text.find("0x"), std::string::npos) << text;
}

TEST(ShardProtocol, ProgressDeadlineThrowsDistinctType) {
  // An empty pipe with an armed deadline must throw ShardTimeoutError — the
  // supervisor tells hangs apart from malformed streams by this type.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_THROW((void)read_shard_frame(fds[0], 50), ShardTimeoutError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ShardProtocol, ResultsRoundTripBitForBit) {
  SiteEpp rec;
  rec.site = 42;
  rec.p_sensitized = 0.12345678901234567;
  rec.p_sens_lower = 0.1;
  rec.p_sens_upper = 0.2;
  rec.self_dpin_mass = 3.5e-17;
  rec.cone_size = 1234;
  rec.reconvergent_gates = 9;
  rec.sinks.push_back(
      {.sink = 7, .error_mass = 0.25, .distribution = Prob4{}});
  rec.sinks[0].distribution.p[0] = 0.5;
  rec.sinks[0].distribution.p[3] = 1e-308;  // denormal-adjacent survives
  const std::vector<SiteEpp> back =
      decode_results(encode_results(std::vector<SiteEpp>{rec}));
  ASSERT_EQ(back.size(), 1u);
  testutil::expect_site_epp_equal(make_c17(), rec, back[0]);
  EXPECT_EQ(decode_done(encode_done(12345)), 12345u);
}

TEST(ShardProtocol, SplitJobEncodingEqualsOneShot) {
  // The fan-out loop reuses one encoded prefix + per-shard site lists; the
  // bytes must be exactly what a one-shot encode_job would produce.
  ShardJob job;
  job.threads = 3;
  job.sp = {0.25, 0.75, 0.5};
  job.spawn = 5;
  job.sites = {2, 0, 1};
  std::vector<std::uint8_t> split = encode_job_prefix(job);
  append_job_dispatch(split, job.spawn, job.sites);
  EXPECT_EQ(split, encode_job(job));
}

TEST(ShardProtocol, ImplausibleElementCountsRejectedBeforeAllocation) {
  // A corrupted count field must be a protocol error, not a multi-GB
  // vector resize: payload claims 2^32-1 records but carries 4 bytes.
  std::vector<std::uint8_t> payload = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW((void)decode_results(payload), std::runtime_error);
  // And a job whose SP count outruns the payload.
  ShardJob job;
  job.sp = {0.5};
  std::vector<std::uint8_t> bytes = encode_job(job);
  bytes[31] = 0xff;  // sp count follows the 15-byte option block + 16-byte
                     // netlist fingerprint
  EXPECT_THROW((void)decode_job(bytes), std::runtime_error);
}

TEST(ShardProtocol, TruncatedPayloadThrows) {
  const std::vector<std::uint8_t> payload = encode_done(7);
  EXPECT_THROW(
      (void)decode_done(std::span(payload).subspan(0, payload.size() - 1)),
      std::runtime_error);
  EXPECT_THROW((void)decode_job(payload), std::runtime_error);
}

TEST(ShardProtocol, FrameStreamOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  write_shard_frame(fds[1], ShardFrameType::kDone, encode_done(3));
  ::close(fds[1]);
  const std::optional<ShardFrame> frame = read_shard_frame(fds[0]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, ShardFrameType::kDone);
  EXPECT_EQ(decode_done(frame->payload), 3u);
  EXPECT_FALSE(read_shard_frame(fds[0]).has_value());  // clean EOF
  ::close(fds[0]);
}

TEST(ShardProtocol, GarbageAndMidFrameEofThrow) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const char garbage[] = "node,type,p_sensitized\n";  // a stray print
  ASSERT_GT(::write(fds[1], garbage, sizeof garbage), 0);
  ::close(fds[1]);
  EXPECT_THROW((void)read_shard_frame(fds[0]), std::runtime_error);
  ::close(fds[0]);

  ASSERT_EQ(::pipe(fds), 0);
  // A valid header promising 100 payload bytes, then death.
  write_shard_frame(fds[1], ShardFrameType::kResults,
                    std::vector<std::uint8_t>(100));
  // Re-read only part: write a fresh truncated copy instead.
  ::close(fds[1]);
  ASSERT_TRUE(read_shard_frame(fds[0]).has_value());
  ::close(fds[0]);

  ASSERT_EQ(::pipe(fds), 0);
  std::uint8_t header[20] = {};
  header[0] = 0x46;  // kShardMagic little-endian first byte
  header[1] = 0x50;
  header[2] = 0x52;
  header[3] = 0x53;
  header[4] = 1;  // version 1
  header[6] = 2;  // kResults
  header[8] = 100;  // promises 100 bytes that never arrive
  ASSERT_EQ(::write(fds[1], header, sizeof header),
            static_cast<ssize_t>(sizeof header));
  ::close(fds[1]);
  EXPECT_THROW((void)read_shard_frame(fds[0]), std::runtime_error);
  ::close(fds[0]);
}

TEST(ShardProtocol, CorruptedPayloadFailsTheCrcCheck) {
  // Flip one payload bit behind an otherwise valid v3 frame: the reader
  // must reject it by CRC, naming the cause — silent acceptance would let
  // a flaky transport corrupt merged sweep values undetected.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  write_shard_frame(fds[1], ShardFrameType::kDone, encode_done(3));
  ::close(fds[1]);
  std::vector<std::uint8_t> stream(20 + 8);
  ASSERT_EQ(::read(fds[0], stream.data(), stream.size()),
            static_cast<ssize_t>(stream.size()));
  ::close(fds[0]);
  stream[20] ^= 0x01;  // first payload byte
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], stream.data(), stream.size()),
            static_cast<ssize_t>(stream.size()));
  ::close(fds[1]);
  try {
    (void)read_shard_frame(fds[0]);
    FAIL() << "corrupted payload was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
  ::close(fds[0]);
}

TEST(ShardProtocol, Crc32MatchesKnownVector) {
  // The classic check value: CRC-32("123456789") = 0xcbf43926. Pins the
  // polynomial and reflection conventions so both ends always agree.
  const std::string check = "123456789";
  EXPECT_EQ(shard_crc32(std::span(
                reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size())),
            0xcbf43926u);
  EXPECT_EQ(shard_crc32({}), 0u);
}

TEST(ShardProtocol, OversizedDeclaredLengthRespectsCallerBound) {
  // A server reading untrusted requests passes a tight max_payload; a
  // declared length past it must throw BEFORE any allocation or payload
  // read (the frame below has no payload bytes at all).
  std::vector<std::uint8_t> frame;
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    write_shard_frame(fds[1], ShardFrameType::kRequest,
                      std::vector<std::uint8_t>(64));
    ::close(fds[1]);
    frame.resize(20 + 64);
    ASSERT_EQ(::read(fds[0], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    ::close(fds[0]);
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ::close(fds[1]);
  EXPECT_THROW((void)read_shard_frame(fds[0], 0, /*max_payload=*/16),
               std::runtime_error);
  ::close(fds[0]);
}

// ---- end-to-end equivalence over real worker processes ---------------------

Options sharded_options(unsigned shards, unsigned threads = 1) {
  Options opt;
  opt.engine = "sharded";
  opt.threads = threads;
  opt.shard.shards = shards;
  opt.shard.worker_path = SEREEP_CLI_PATH;
  return opt;
}

void expect_sweeps_equal(Session& expected, Session& actual) {
  const std::vector<SiteEpp> want = expected.sweep();
  const std::vector<SiteEpp> got = actual.sweep();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    testutil::expect_site_epp_equal(expected.circuit(), want[i], got[i]);
  }
  EXPECT_EQ(actual.sweep_p_sensitized(), expected.sweep_p_sensitized());
}

TEST(ShardedEngine, BitIdenticalToBatchedOnEmbeddedCircuits) {
  for (const char* name : {"c17", "s27", "s953"}) {
    for (unsigned shards : {2u, 3u, 4u}) {
      Session batched = Session::open(name);
      Session sharded = Session::open(name, sharded_options(shards));
      expect_sweeps_equal(batched, sharded);
      const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
      ASSERT_NE(diag, nullptr);
      if (std::string(name) != "c17") {  // c17 may fit one cluster
        EXPECT_FALSE(diag->in_process) << name << " shards=" << shards;
        EXPECT_GE(diag->workers_spawned, 2u);
      }
    }
  }
}

TEST(ShardedEngine, BitIdenticalOnAGeneratedNetlistFromDisk) {
  // The worker loads the netlist by spec; a generated circuit written to a
  // temp .bench exercises the full file round trip (both sides parse the
  // same bytes — the parent session opens the same path).
  GeneratorProfile profile;
  profile.name = "shardfuzz";
  profile.num_inputs = 16;
  profile.num_outputs = 12;
  profile.num_dffs = 40;
  profile.num_gates = 900;
  profile.target_depth = 14;
  profile.reuse_bias = 0.5;
  const Circuit circuit = generate_circuit(profile, 777);
  const std::string path =
      ::testing::TempDir() + "/sereep_sharded_fuzz.bench";
  ASSERT_TRUE(save_bench_file(circuit, path));

  Session batched = Session::open(path);
  Session sharded = Session::open(path, sharded_options(3, /*threads=*/2));
  expect_sweeps_equal(batched, sharded);
  std::remove(path.c_str());
}

std::string read_golden(const char* name) {
  const std::string path =
      std::string(SEREEP_SOURCE_DIR) + "/tests/data/" + name;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "missing golden file: " << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ShardedEngine, GoldenCsvsByteEqualAtEveryShardCount) {
  // The acceptance bar: --engine=sharded --shards=2..4 reproduces the
  // committed golden bytes exactly — the same files every in-process engine
  // is pinned against.
  for (unsigned shards : {2u, 3u, 4u}) {
    Session c17 = Session::open("c17", sharded_options(shards));
    EXPECT_EQ(c17.sweep_csv(), read_golden("sweep_c17.golden.csv"))
        << "shards=" << shards;
    EXPECT_EQ(c17.ser_csv(), read_golden("ser_c17.golden.csv"))
        << "shards=" << shards;
    Session s27 = Session::open("s27", sharded_options(shards));
    EXPECT_EQ(s27.sweep_csv(), read_golden("sweep_s27.golden.csv"))
        << "shards=" << shards;
    EXPECT_EQ(s27.ser_csv(), read_golden("ser_s27.golden.csv"))
        << "shards=" << shards;
  }
}

TEST(ShardedEngine, SerAndGoldenTextIdenticalThroughTheFacade) {
  // ser()/harden() fold the engine's sweep records — the whole analysis
  // stack must be byte-identical through worker processes.
  Session batched = Session::open("s27");
  Session sharded = Session::open("s27", sharded_options(2));
  EXPECT_EQ(sharded.sweep_csv(), batched.sweep_csv());
  EXPECT_EQ(sharded.ser_csv(), batched.ser_csv());
  EXPECT_EQ(sharded.harden_text(0.5), batched.harden_text(0.5));
}

TEST(ShardedEngine, PerSiteQueriesNeverFork) {
  Session sharded = Session::open("s27", sharded_options(2));
  Session batched = Session::open("s27");
  for (NodeId site : sharded.sites()) {
    EXPECT_EQ(sharded.p_sensitized(site), batched.p_sensitized(site));
  }
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->sweeps, 0u);  // per-site traffic is not a sweep
}

// ---- failure contract ------------------------------------------------------

TEST(ShardedEngine, DeadWorkerBinaryErrorsLoudly) {
  Options opt = sharded_options(2);
  opt.shard.worker_path = "/bin/false";  // spawns, exits 1, streams nothing
  Session session = Session::open("s953", std::move(opt));
  try {
    (void)session.sweep();
    FAIL() << "a dead worker must abort the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
    EXPECT_NE(what.find("no partial results"), std::string::npos) << what;
  }
}

TEST(ShardedEngine, MissingWorkerBinaryErrorsLoudly) {
  Options opt = sharded_options(2);
  opt.shard.worker_path = "/nonexistent/sereep";
  Session session = Session::open("s953", std::move(opt));
  EXPECT_THROW((void)session.sweep(), std::runtime_error);
}

/// Sets SEREEP_FAULT_PLAN for one test scope; workers inherit it through
/// the environment. Always unsets on exit so faults never leak across
/// tests.
class FaultPlanEnv {
 public:
  explicit FaultPlanEnv(const char* plan) {
    EXPECT_EQ(::setenv("SEREEP_FAULT_PLAN", plan, 1), 0);
  }
  ~FaultPlanEnv() { ::unsetenv("SEREEP_FAULT_PLAN"); }
  FaultPlanEnv(const FaultPlanEnv&) = delete;
  FaultPlanEnv& operator=(const FaultPlanEnv&) = delete;
};

TEST(ShardedEngine, WorkerKilledMidStreamErrorsLoudly) {
  // Under the DEFAULT policy (fail), a fault-plan death at any stream
  // position aborts the sweep: exit dies before reading the job,
  // die-after-frames=0 after the handshake but before any results, and
  // die-after-frames=1 after genuinely streaming a result frame (the
  // nastiest case: plausible-looking but incomplete).
  for (const char* plan :
       {"0:exit", "0:die-after-frames=0", "0:die-after-frames=1"}) {
    FaultPlanEnv env(plan);
    Session session = Session::open("s953", sharded_options(2));
    try {
      (void)session.sweep();
      FAIL() << "plan " << plan << " must abort the sweep";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("shard"), std::string::npos) << plan << ": " << what;
    }
  }
}

TEST(ShardedEngine, UnavailableShardingFailsUnlessFallbackOptedIn) {
  // A session over an in-memory circuit has no netlist spec for workers.
  Options opt = sharded_options(2);
  opt.shard.worker_path.clear();
  Session strict(make_s27(), opt);
  EXPECT_THROW((void)strict.sweep(), std::runtime_error);

  opt.shard.fallback_to_in_process = true;
  Session fallback(make_s27(), opt);
  Session batched(make_s27());
  expect_sweeps_equal(batched, fallback);
  const ShardedEppEngine::Diagnostics* diag = fallback.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_TRUE(diag->in_process);
  EXPECT_EQ(diag->workers_spawned, 0u);
}

TEST(ShardedEngine, SingleShardIsAConfiguredInProcessRun) {
  // shards=1 is a legitimate configuration, not a fallback — it must work
  // with no worker binary at all and stay bit-identical.
  Options opt = sharded_options(1);
  opt.shard.worker_path.clear();
  Session single(make_s27(), opt);
  Session batched(make_s27());
  expect_sweeps_equal(batched, single);
}

// ---- the shard supervisor: retry / deadline / degrade ----------------------

Options retry_options(unsigned shards, unsigned retries,
                      OnShardFailure policy = OnShardFailure::kRetry,
                      unsigned timeout_ms = 0) {
  Options opt = sharded_options(shards);
  opt.shard.retry.retries = retries;
  opt.shard.retry.on_failure = policy;
  opt.shard.retry.timeout_ms = timeout_ms;
  // Keep tests fast; the respawn path is identical, only the sleep shrinks.
  opt.shard.retry.backoff_base_ms = 1;
  return opt;
}

void expect_reap_hygiene(const ShardedEppEngine::Diagnostics* diag) {
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->workers_reaped, diag->workers_spawned)
      << "a completed sweep must have waited on every process it forked";
}

TEST(ShardedRetry, CleanSweepSpawnsExactlyOneWorkerPerShard) {
  Session sharded = Session::open("s953", retry_options(2, 2));
  Session batched = Session::open("s953");
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->respawns, 0u);
  EXPECT_EQ(diag->deadline_expiries, 0u);
  EXPECT_EQ(diag->degraded_shards, 0u);
  EXPECT_EQ(diag->redispatched_sites, 0u);
  EXPECT_EQ(diag->workers_spawned, diag->shard_sites.size());
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, RecoversFromDeathAtEveryProtocolPhase) {
  // Spawn 0 (shard 0's first worker) dies at each protocol phase in turn:
  // before reading the job, after the job ack, after the handshake, and on
  // the second shard instead (1:exit). Every schedule must recover via
  // re-dispatch and stay bit-identical.
  Session batched = Session::open("s953");
  const std::vector<SiteEpp> want = batched.sweep();
  for (const char* plan : {"0:exit", "0:die-before-handshake",
                           "0:die-after-frames=0", "1:exit"}) {
    FaultPlanEnv env(plan);
    Session sharded = Session::open("s953", retry_options(2, 2));
    const std::vector<SiteEpp> got = sharded.sweep();
    ASSERT_EQ(got.size(), want.size()) << plan;
    for (std::size_t i = 0; i < want.size(); ++i) {
      testutil::expect_site_epp_equal(batched.circuit(), want[i], got[i]);
    }
    const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
    ASSERT_NE(diag, nullptr);
    EXPECT_GE(diag->respawns, 1u) << plan;
    EXPECT_GT(diag->redispatched_sites, 0u) << plan;
    expect_reap_hygiene(diag);
  }
}

TEST(ShardedRetry, LostCompletionFrameRecoversWithoutRecompute) {
  // die-before-done delivers EVERY record, each verified against its
  // expected site, then kills the worker before kDone. The supervisor keeps
  // the complete verified set — nothing to recompute, no respawn burned.
  FaultPlanEnv env("0:die-before-done");
  Session batched = Session::open("s953");
  Session sharded = Session::open("s953", retry_options(2, 2));
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->respawns, 0u);
  EXPECT_EQ(diag->redispatched_sites, 0u);
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, KeepsVerifiedPrefixAndRedispatchesOnlyResidual) {
  // A shard big enough for multiple result frames (slice = 1024 sites),
  // dying after the first frame: the supervisor must keep the verified
  // prefix and re-dispatch strictly fewer sites than the whole shard.
  GeneratorProfile profile;
  profile.name = "shardretry";
  profile.num_inputs = 16;
  profile.num_outputs = 12;
  profile.num_dffs = 40;
  profile.num_gates = 2600;
  profile.target_depth = 14;
  profile.reuse_bias = 0.5;
  const Circuit circuit = generate_circuit(profile, 4242);
  const std::string path =
      ::testing::TempDir() + "/sereep_shard_retry.bench";
  ASSERT_TRUE(save_bench_file(circuit, path));

  FaultPlanEnv env("0:die-after-frames=1");
  Session batched = Session::open(path);
  Session sharded = Session::open(path, retry_options(2, 2));
  const std::vector<SiteEpp> want = batched.sweep();
  const std::vector<SiteEpp> got = sharded.sweep();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    testutil::expect_site_epp_equal(batched.circuit(), want[i], got[i]);
  }
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  ASSERT_GE(diag->shard_sites.size(), 1u);
  EXPECT_EQ(diag->respawns, 1u);
  EXPECT_GT(diag->redispatched_sites, 0u);
  EXPECT_LT(diag->redispatched_sites, diag->shard_sites[0])
      << "the verified prefix must not be recomputed";
  expect_reap_hygiene(diag);
  std::remove(path.c_str());
}

TEST(ShardedRetry, CorruptFrameMidRetryDistrustsAndRecomputes) {
  // Spawn 0 garbles its stream (the whole attempt is distrusted and
  // recomputed), then the FIRST retry worker (spawn 2 — ordinals continue
  // past the initial fleet) dies too; the second retry completes. Exercises
  // a fault INSIDE the retry path, not just on the first dispatch.
  FaultPlanEnv env("0:corrupt-frame;2:die-after-frames=0");
  Session batched = Session::open("s953");
  Session sharded = Session::open("s953", retry_options(2, 2));
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_GE(diag->respawns, 2u);
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, HangingWorkerTripsDeadlineAndRecovers) {
  // hang = the worker stops producing bytes entirely; only the progress
  // deadline can unstick the sweep. The respawned worker completes and the
  // expiry is counted.
  FaultPlanEnv env("0:hang");
  Session batched = Session::open("s953");
  Session sharded = Session::open(
      "s953", retry_options(2, 2, OnShardFailure::kRetry, /*timeout_ms=*/400));
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_GE(diag->deadline_expiries, 1u);
  EXPECT_GE(diag->respawns, 1u);
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, HangingWorkerUnderFailPolicyAbortsAtTheDeadline) {
  // The deadline is orthogonal to retries: under the default fail policy it
  // turns an infinite hang into a loud, prompt abort.
  FaultPlanEnv env("0:hang");
  Options opt = sharded_options(2);
  opt.shard.retry.timeout_ms = 300;
  Session session = Session::open("s953", std::move(opt));
  try {
    (void)session.sweep();
    FAIL() << "a hung worker must abort under the fail policy";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
  }
}

TEST(ShardedRetry, SlowButLiveStreamNeverTripsTheDeadline) {
  // The deadline is an INTER-BYTE clock: a stream that keeps producing,
  // however slowly relative to the sweep, must pass untouched.
  FaultPlanEnv env("0:slow-stream=50");
  Session batched = Session::open("s27");
  Session sharded = Session::open(
      "s27", retry_options(2, 0, OnShardFailure::kFail, /*timeout_ms=*/2000));
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->deadline_expiries, 0u);
  EXPECT_EQ(diag->respawns, 0u);
}

TEST(ShardedRetry, BudgetExhaustionFailsLoudly) {
  // Shard 0's initial worker (spawn 0) and both retry workers (spawns 2, 3)
  // die: the budget of 2 retries is exhausted and the sweep must abort with
  // a diagnostic naming the shard and the budget.
  FaultPlanEnv env("0:exit;2:exit;3:exit");
  Session session = Session::open("s953", retry_options(2, 2));
  try {
    (void)session.sweep();
    FAIL() << "an exhausted retry budget must abort the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
  }
}

TEST(ShardedRetry, BudgetExhaustionUnderDegradeFinishesInProcess) {
  // Same triple-death schedule, degrade policy: the sweep completes
  // bit-identically, with the dead shard's residual computed in-process.
  FaultPlanEnv env("0:exit;2:exit;3:exit");
  Session batched = Session::open("s953");
  Session sharded = Session::open(
      "s953", retry_options(2, 2, OnShardFailure::kDegrade));
  expect_sweeps_equal(batched, sharded);
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->degraded_shards, 1u);
  EXPECT_EQ(diag->respawns, 2u);
  EXPECT_GT(diag->redispatched_sites, 0u);
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, FingerprintMismatchIsNonRetryable) {
  // The parent analyses an in-memory s27 but points workers at c17: every
  // respawn would load the same wrong netlist, so the supervisor must throw
  // IMMEDIATELY — naming both fingerprints — without burning the budget.
  Options opt = retry_options(2, 5);
  opt.shard.netlist = "c17";
  Session session(make_s27(), std::move(opt));
  try {
    (void)session.sweep();
    FAIL() << "a fingerprint mismatch must abort the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist fingerprint mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find("non-retryable"), std::string::npos) << what;
    // Both sides' fingerprints appear (two digest hex literals).
    EXPECT_NE(what.find("0x"), std::string::npos) << what;
    EXPECT_NE(what.rfind("0x"), what.find("0x")) << what;
  }
  const ShardedEppEngine::Diagnostics* diag = session.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->respawns, 0u) << "mismatch must not be retried";
}

TEST(ShardedRetry, ArtifactFingerprintMismatchRefusedBeforeDispatch) {
  // Deliberate desync, artifact flavor: the parent analyses an in-memory
  // s27 but shard.netlist points at a c17 ARTIFACT. Unlike the netlist
  // case — where the mismatch surfaces in each worker's handshake — the
  // artifact header carries the fingerprint, so the supervisor can peek 128
  // bytes and refuse BEFORE spawning anything, naming both digests and the
  // offending path.
  const std::string path = ::testing::TempDir() + "sereep_desync_c17.sca";
  write_artifact(path, make_c17());
  Options opt = retry_options(2, 5);
  opt.shard.netlist = path;
  Session session(make_s27(), std::move(opt));
  try {
    (void)session.sweep();
    FAIL() << "an artifact fingerprint mismatch must abort the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist fingerprint mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find("non-retryable"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos)
        << "the diagnostic should name the artifact: " << what;
    EXPECT_NE(what.find("0x"), std::string::npos) << what;
    EXPECT_NE(what.rfind("0x"), what.find("0x")) << what;
  }
  const ShardedEppEngine::Diagnostics* diag = session.shard_diagnostics();
  if (diag != nullptr) {
    EXPECT_EQ(diag->workers_spawned, 0u)
        << "the refusal must happen before any worker is forked";
    EXPECT_EQ(diag->respawns, 0u);
  }
  std::remove(path.c_str());
}

TEST(ShardedRetry, RecoveredSweepReproducesGoldenCsvBytes) {
  // The acceptance bar: a worker killed mid-stream plus --shard-retries=2
  // still reproduces the committed golden bytes exactly, and the recovery
  // is visible in the diagnostics.
  FaultPlanEnv env("0:die-after-frames=0");
  Session s27 = Session::open("s27", retry_options(2, 2));
  EXPECT_EQ(s27.sweep_csv(), read_golden("sweep_s27.golden.csv"));
  const ShardedEppEngine::Diagnostics* diag = s27.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_GE(diag->respawns, 1u);
  expect_reap_hygiene(diag);
}

TEST(ShardedRetry, FaultScheduleFuzzStaysBitIdentical) {
  // A spread of fault schedules — single faults, faults on both shards,
  // faults inside the retry path, mixed modes — must all recover to
  // bit-identical results with clean process accounting. Plans are fixed
  // (not random at runtime) so a failure names its schedule.
  Session batched = Session::open("s953");
  const std::vector<SiteEpp> want = batched.sweep();
  for (const char* plan : {
           "0:exit;1:die-after-frames=0",
           "0:die-before-handshake;2:corrupt-frame",
           "0:corrupt-frame;1:die-before-done",
           "1:hang",
           "0:slow-stream=20;1:exit",
           "0:die-after-frames=0;2:die-after-frames=0;3:exit",
       }) {
    FaultPlanEnv env(plan);
    Session sharded = Session::open(
        "s953",
        retry_options(2, 3, OnShardFailure::kRetry, /*timeout_ms=*/1500));
    const std::vector<SiteEpp> got = sharded.sweep();
    ASSERT_EQ(got.size(), want.size()) << plan;
    for (std::size_t i = 0; i < want.size(); ++i) {
      testutil::expect_site_epp_equal(batched.circuit(), want[i], got[i]);
    }
    expect_reap_hygiene(sharded.shard_diagnostics());
  }
}

TEST(ShardedRetry, DiagnosticsResetBetweenSweepsOnOneSession) {
  // Two sweeps on the SAME Session: the first recovers from a worker death
  // (respawns >= 1), the second runs clean. Every per-sweep counter must
  // describe ONLY the last sweep — a second report still showing the first
  // sweep's respawns would make a healthy fleet look like it is dying. Only
  // the cumulative `sweeps` counter may grow.
  Session sharded = Session::open("s953", retry_options(2, 2));
  {
    FaultPlanEnv env("0:exit");
    (void)sharded.sweep();
  }
  const ShardedEppEngine::Diagnostics* diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->sweeps, 1u);
  EXPECT_GE(diag->respawns, 1u);
  EXPECT_GT(diag->redispatched_sites, 0u);
  const unsigned faulted_spawns = diag->workers_spawned;

  (void)sharded.sweep();  // no fault plan in the environment now
  diag = sharded.shard_diagnostics();
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->sweeps, 2u) << "sweeps is the one cumulative counter";
  EXPECT_EQ(diag->respawns, 0u) << "stale respawns leaked across sweeps";
  EXPECT_EQ(diag->redispatched_sites, 0u);
  EXPECT_EQ(diag->deadline_expiries, 0u);
  EXPECT_EQ(diag->degraded_shards, 0u);
  EXPECT_EQ(diag->transport, "pipe");
  EXPECT_LT(diag->workers_spawned, faulted_spawns)
      << "a clean sweep spawns exactly the shard fleet, no respawns";
  expect_reap_hygiene(diag);
}

}  // namespace
}  // namespace sereep
