// P_latched: the probability that an erroneous value arriving at a sink is
// actually captured.
//
// A transient pulse reaching a flip-flop D pin is latched only if it overlaps
// the setup+hold window of the capturing clock edge (the classic
// latching-window model): P_latched ≈ (w + d) / T_clk, with w the
// setup+hold window, d the pulse duration and T_clk the clock period. A
// primary output is assumed observed every cycle (P_latched = 1) unless
// configured otherwise.
#pragma once

#include "src/netlist/circuit.hpp"

namespace sereep {

/// Latching-window model.
class LatchingModel {
 public:
  LatchingModel() = default;
  LatchingModel(double clock_period_ns, double window_ns, double pulse_ns)
      : clock_period_ns_(clock_period_ns),
        window_ns_(window_ns),
        pulse_ns_(pulse_ns) {}

  void set_clock_period(double ns) noexcept { clock_period_ns_ = ns; }
  void set_window(double ns) noexcept { window_ns_ = ns; }
  void set_pulse_width(double ns) noexcept { pulse_ns_ = ns; }
  void set_po_probability(double p) noexcept { po_probability_ = p; }

  /// P_latched for an error observed at `sink` (a PO node or DFF).
  [[nodiscard]] double probability(const Circuit& circuit, NodeId sink) const {
    if (circuit.type(sink) == GateType::kDff) {
      const double p = (window_ns_ + pulse_ns_) / clock_period_ns_;
      return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    }
    return po_probability_;
  }

 private:
  double clock_period_ns_ = 2.0;   ///< 500 MHz class
  double window_ns_ = 0.08;        ///< setup + hold
  double pulse_ns_ = 0.15;         ///< SET pulse width
  double po_probability_ = 1.0;    ///< POs observed every cycle
};

}  // namespace sereep
