#include "src/util/strings.hpp"

#include <gtest/gtest.h>

namespace sereep {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Trim, EmptyAndAllSpace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, SingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitWs, DropsEmptyRuns) {
  const auto fields = split_ws("  a \t b\n c ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWs, EmptyInput) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("NAND", "nand"));
  EXPECT_TRUE(iequals("DfF", "dFf"));
  EXPECT_FALSE(iequals("NAND", "NOR"));
  EXPECT_FALSE(iequals("NAND", "NAN"));
}

TEST(IStartsWith, Basics) {
  EXPECT_TRUE(istarts_with("INPUT(G0)", "input"));
  EXPECT_FALSE(istarts_with("IN", "INPUT"));
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(0.5, 0), "0");  // rounds-to-even allowed either way
  EXPECT_EQ(format_fixed(-1.25, 1), "-1.2");
}

TEST(FormatSi, Magnitudes) {
  EXPECT_EQ(format_si(950.0), "950");
  EXPECT_EQ(format_si(12300.0), "12.3k");
  EXPECT_EQ(format_si(2.5e6), "2.5M");
  EXPECT_EQ(format_si(3.0e9), "3.0G");
}

TEST(ToUpper, Ascii) { EXPECT_EQ(to_upper("nand2_x1"), "NAND2_X1"); }

TEST(ParseLongStrict, AcceptsWholeStringIntegersOnly) {
  EXPECT_EQ(parse_long_strict("0"), 0);
  EXPECT_EQ(parse_long_strict("42"), 42);
  EXPECT_EQ(parse_long_strict("-17"), -17);
  EXPECT_EQ(parse_long_strict("+8"), 8);
  EXPECT_EQ(parse_long_strict("007"), 7);
}

TEST(ParseLongStrict, RejectsTheSilentZeroFamily) {
  // Every one of these was a silent 0 (or a silent truncation) under plain
  // strtol — the CLI bugs this parser exists to close.
  EXPECT_EQ(parse_long_strict("abc"), std::nullopt);
  EXPECT_EQ(parse_long_strict(""), std::nullopt);
  EXPECT_EQ(parse_long_strict("1e4"), std::nullopt);   // parsed as 1
  EXPECT_EQ(parse_long_strict("12x"), std::nullopt);   // parsed as 12
  EXPECT_EQ(parse_long_strict("4.5"), std::nullopt);   // parsed as 4
  EXPECT_EQ(parse_long_strict(" 7"), std::nullopt);    // no implicit trim
  EXPECT_EQ(parse_long_strict("7 "), std::nullopt);
  EXPECT_EQ(parse_long_strict("-"), std::nullopt);
  EXPECT_EQ(parse_long_strict("0x10"), std::nullopt);  // base 10 only
}

TEST(ParseLongStrict, RejectsOutOfRange) {
  EXPECT_EQ(parse_long_strict("99999999999999999999999999"), std::nullopt);
  EXPECT_EQ(parse_long_strict("-99999999999999999999999999"), std::nullopt);
}

TEST(ParseDoubleStrict, AcceptsFiniteNumbers) {
  EXPECT_EQ(parse_double_strict("0.5"), 0.5);
  EXPECT_EQ(parse_double_strict("-1.25"), -1.25);
  EXPECT_EQ(parse_double_strict("1e4"), 1e4);
  EXPECT_EQ(parse_double_strict("3"), 3.0);
}

TEST(ParseDoubleStrict, RejectsGarbageAndNonFinite) {
  EXPECT_EQ(parse_double_strict("abc"), std::nullopt);
  EXPECT_EQ(parse_double_strict(""), std::nullopt);
  EXPECT_EQ(parse_double_strict("0.5x"), std::nullopt);
  EXPECT_EQ(parse_double_strict(" 0.5"), std::nullopt);
  EXPECT_EQ(parse_double_strict("1e999"), std::nullopt);  // overflow
  EXPECT_EQ(parse_double_strict("inf"), std::nullopt);
  EXPECT_EQ(parse_double_strict("nan"), std::nullopt);
}

}  // namespace
}  // namespace sereep
