// Small string utilities shared by the .bench parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sereep {

/// Remove leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a single delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Split on any whitespace run; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);

/// Case-insensitive ASCII equality (gate keywords in .bench files vary).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Uppercase ASCII copy.
[[nodiscard]] std::string to_upper(std::string_view text);

/// True if `text` starts with `prefix` (case-insensitive).
[[nodiscard]] bool istarts_with(std::string_view text,
                                std::string_view prefix) noexcept;

/// printf-style float with fixed decimals, used by table rendering.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Human-friendly engineering formatting: 12345 -> "12.3k".
[[nodiscard]] std::string format_si(double value);

}  // namespace sereep
