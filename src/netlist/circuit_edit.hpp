// Post-finalize circuit editing — the what-if loop's entry point.
//
// Every mutating workflow (selective TMR hardening, ECO gate swaps, fanin
// rewires) used to rebuild the Circuit from scratch: the add_* API throws
// after finalize(), so a one-gate change paid a full reconstruction, a full
// re-flatten, a full SP pass and a full sweep. EditBatch is the narrow
// mutation channel that replaces that: obtained from Circuit::edit(), it
// applies a batch of validated edits to a FINALIZED circuit in place,
// re-derives the frozen indexes (sources/sinks/topo order/levels) exactly
// the way finalize() does, and reports the dirty node set so downstream
// layers (CompiledCircuit patching, incremental SP, the Session's
// dirty-cone re-sweep) can invalidate O(touched cones) instead of
// everything.
//
// Determinism contract: after commit(), the edited circuit is
// INDISTINGUISHABLE from Circuit::restore() over the same node table — the
// reindex runs the same Kahn pass over the same adjacency, so topo order,
// levels, and every float produced downstream are bit-identical to a
// from-scratch rebuild (pinned by tests/netlist/edit_test.cpp and the
// engine-equivalence edit fuzz).
//
// Ops validate eagerly (throwing std::runtime_error with the offending op
// named) and apply eagerly; commit() performs one reindex for the whole
// batch and returns the EditResult. A batch abandoned without commit()
// still reindexes in its destructor — the circuit is never left with stale
// frozen indexes — but the dirty set is lost, so callers that care (all of
// them) must commit().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/netlist/circuit.hpp"

namespace sereep {

/// What a committed batch touched — the seed of every downstream
/// invalidation.
struct EditResult {
  /// Nodes whose function or local structure changed: retyped gates, rewired
  /// gates, inserted gates, and every consumer whose fanin list was redirected
  /// (TMR voter splice). Sorted ascending, unique.
  std::vector<NodeId> dirty;
  /// Nodes appended by insert_gate/protect_tmr (a subset of `dirty`), in
  /// insertion order. Non-empty implies the node count grew.
  std::vector<NodeId> inserted;
  /// False only when every op was a retype — the one edit class that
  /// preserves the adjacency arrays (and therefore the compiled CSR layout).
  bool structure_changed = false;
};

/// One in-flight edit batch over a finalized Circuit (see file comment).
/// Move-only; at most one live batch per circuit at a time.
class EditBatch {
 public:
  EditBatch(EditBatch&& other) noexcept;
  EditBatch& operator=(EditBatch&&) = delete;
  EditBatch(const EditBatch&) = delete;
  EditBatch& operator=(const EditBatch&) = delete;
  ~EditBatch();

  /// Changes a combinational gate's type. The new type must be combinational
  /// and accept the gate's current fanin count.
  void retype(NodeId gate, GateType type);

  /// Redirects one fanin slot of a gate (or a DFF's D pin) to a different
  /// existing node. Rejects edits that would create a combinational cycle.
  void rewire_fanin(NodeId gate, std::size_t slot, NodeId new_source);

  /// Appends a new combinational gate over existing nodes. The gate starts
  /// with no consumers (rewire_fanin splices it in) — a dangling gate is a
  /// legal, merely unobservable, error site.
  NodeId insert_gate(GateType type, std::string name,
                     std::vector<NodeId> fanin);

  /// Protects a combinational gate with triple modular redundancy in place:
  /// two extra copies plus the same 2-level AND/OR majority voter
  /// apply_tmr() builds, with every pre-existing consumer (and primary-output
  /// flag) moved onto the voter. Returns the voter's NodeId.
  NodeId protect_tmr(NodeId gate);

  /// Reindexes the circuit (one Kahn pass for the whole batch) and returns
  /// what changed. The batch is spent afterwards; further ops throw.
  EditResult commit();

 private:
  friend class Circuit;
  explicit EditBatch(Circuit& circuit) : circuit_(&circuit) {}

  void require_open(const char* op) const;
  void mark_dirty(NodeId id);

  Circuit* circuit_ = nullptr;  ///< null once committed/moved-from
  EditResult result_;
  std::vector<std::uint8_t> dirty_flag_;  ///< lazily sized, dedups `dirty`
};

// ---- serializable edit plans ----------------------------------------------
// The name-based value form of a batch: what `sereep client --edit` ships
// over the wire (serve kEdit) and what the CLI parses. Ops reference nodes
// by NAME so a plan is meaningful to any process holding the same netlist.

/// One name-based edit op.
struct EditOp {
  enum class Kind : std::uint8_t {
    kRetype = 1,  ///< retype <node> <TYPE>
    kRewire = 2,  ///< rewire <gate> <slot> <source>
    kInsert = 3,  ///< insert <TYPE> <name> <fanin...>
    kTmr = 4,     ///< tmr <gate>
  };
  Kind kind = Kind::kRetype;
  std::string node;    ///< target gate name (retype / rewire / tmr)
  GateType type = GateType::kAnd;  ///< retype / insert
  std::uint32_t slot = 0;          ///< rewire
  std::string source;              ///< rewire: new source name
  std::string name;                ///< insert: new gate name
  std::vector<std::string> fanin;  ///< insert: fanin names
};

/// A sequence of ops applied as one batch.
struct EditPlan {
  std::vector<EditOp> ops;
};

/// Parses the CLI/wire text form: ops separated by ';' or newlines, each
///   retype <node> <TYPE>
///   rewire <gate> <slot> <source>
///   insert <TYPE> <name> <fanin> [<fanin> ...]
///   tmr <gate>
/// Throws std::runtime_error naming the malformed op. The empty spec is an
/// error (an edit request that edits nothing is a caller bug).
[[nodiscard]] EditPlan parse_edit_spec(std::string_view spec);

/// The canonical text rendering parse_edit_spec() accepts (ops joined with
/// "; ") — the wire form and the round-trip pin.
[[nodiscard]] std::string to_string(const EditPlan& plan);

/// Resolves names and applies `plan` to a finalized circuit as one
/// EditBatch. Throws std::runtime_error on unknown names or invalid ops;
/// ops BEFORE the failing one have been applied and the circuit reindexed
/// (the batch destructor guarantees consistent frozen indexes even on the
/// error path).
EditResult apply_edit_plan(Circuit& circuit, const EditPlan& plan);

}  // namespace sereep
