#include "src/report/report.hpp"

#include <gtest/gtest.h>

#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"

namespace sereep {
namespace {

TEST(Report, ContainsAllSections) {
  const std::string md = generate_report(make_s27(), {});
  EXPECT_NE(md.find("# Soft-error reliability report: s27"), std::string::npos);
  EXPECT_NE(md.find("## Circuit structure"), std::string::npos);
  EXPECT_NE(md.find("## Signal probability"), std::string::npos);
  EXPECT_NE(md.find("## SER estimate"), std::string::npos);
  EXPECT_NE(md.find("## Hardening recommendation"), std::string::npos);
  EXPECT_EQ(md.find("## Validation"), std::string::npos)
      << "validation section must be opt-in";
}

TEST(Report, ValidationSectionOptIn) {
  ReportOptions opt;
  opt.validate_with_simulation = true;
  opt.validation_sites = 10;
  opt.validation_vectors = 1024;
  const std::string md = generate_report(make_c17(), opt);
  EXPECT_NE(md.find("## Validation against fault injection"),
            std::string::npos);
  EXPECT_NE(md.find("mean |EPP"), std::string::npos);
}

TEST(Report, SequentialSpNoted) {
  ReportOptions opt;
  opt.sequential_sp = true;
  const std::string md = generate_report(make_s27(), opt);
  EXPECT_NE(md.find("sequential fixed point"), std::string::npos);
}

TEST(Report, TopNodesRespected) {
  ReportOptions opt;
  opt.top_nodes = 3;
  const std::string md = generate_report(make_iscas89_like("s298"), opt);
  EXPECT_NE(md.find("| 3 |"), std::string::npos);
  EXPECT_EQ(md.find("| 4 |"), std::string::npos);
}

TEST(Report, MentionsFitAndStructure) {
  const std::string md = generate_report(make_c17(), {});
  EXPECT_NE(md.find("FIT"), std::string::npos);
  EXPECT_NE(md.find("| Combinational gates | 6 |"), std::string::npos);
}

TEST(Report, WorksOnCombinationalAndSequential) {
  for (const char* name : {"c17", "s27", "c432", "s298"}) {
    const std::string md = generate_report(make_circuit(name), {});
    EXPECT_GT(md.size(), 500u) << name;
  }
}

}  // namespace
}  // namespace sereep
