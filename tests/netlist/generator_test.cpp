#include "src/netlist/generator.hpp"

#include <gtest/gtest.h>

#include "src/netlist/bench_io.hpp"
#include "src/netlist/stats.hpp"
#include "src/netlist/topo.hpp"

namespace sereep {
namespace {

TEST(Generator, MatchesRequestedCounts) {
  GeneratorProfile p;
  p.name = "g1";
  p.num_inputs = 12;
  p.num_outputs = 7;
  p.num_dffs = 5;
  p.num_gates = 300;
  p.target_depth = 15;
  const Circuit c = generate_circuit(p, 1);
  const CircuitStats s = compute_stats(c);
  EXPECT_EQ(s.inputs, 12u);
  EXPECT_EQ(s.dffs, 5u);
  EXPECT_EQ(s.gates, 300u);
  // PO quota exact unless the fixup had to promote extra dangling gates.
  EXPECT_GE(s.outputs, 7u);
  EXPECT_LE(s.outputs, 7u + 5u);
  EXPECT_EQ(s.depth, 15u);
}

TEST(Generator, DeterministicUnderSeed) {
  const GeneratorProfile p = iscas89_profile("s953");
  const Circuit a = generate_circuit(p, 99);
  const Circuit b = generate_circuit(p, 99);
  EXPECT_EQ(write_bench(a), write_bench(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratorProfile p = iscas89_profile("s953");
  EXPECT_NE(write_bench(generate_circuit(p, 1)),
            write_bench(generate_circuit(p, 2)));
}

TEST(Generator, EveryGateReachesASink) {
  const Circuit c = make_iscas89_like("s953");
  ConeExtractor ex(c);
  for (NodeId id = 0; id < c.node_count(); ++id) {
    if (!is_combinational(c.type(id))) continue;
    const Cone& cone = ex.extract(id);
    EXPECT_FALSE(cone.reachable_sinks.empty())
        << "gate " << c.node(id).name << " is unobservable";
  }
}

TEST(Generator, OutputIsParseable) {
  const Circuit c = make_iscas89_like("s298");
  const Circuit reparsed = parse_bench(write_bench(c), c.name());
  EXPECT_EQ(reparsed.node_count(), c.node_count());
  EXPECT_EQ(reparsed.depth(), c.depth());
}

TEST(Generator, HasReconvergence) {
  // EPP's whole point is reconvergent error paths; generated stand-ins must
  // exercise them heavily.
  const Circuit c = make_iscas89_like("s1196");
  EXPECT_GT(count_reconvergent_stems(c), 50u);
}

TEST(Generator, RejectsDegenerateProfiles) {
  GeneratorProfile p;
  p.num_inputs = 0;
  EXPECT_THROW(generate_circuit(p, 1), std::runtime_error);
  GeneratorProfile q;
  q.num_outputs = 0;
  q.num_dffs = 0;
  EXPECT_THROW(generate_circuit(q, 1), std::runtime_error);
}

TEST(Iscas89Profiles, AllPresentAndDistinct) {
  const auto& profiles = iscas89_profiles();
  EXPECT_GE(profiles.size(), 21u);
  for (const char* name :
       {"s953", "s1196", "s1238", "s1423", "s1488", "s1494", "s9234",
        "s15850", "s35932", "s38584", "s38417"}) {
    EXPECT_NO_THROW((void)iscas89_profile(name)) << name;
  }
  // ISCAS'85 combinational profiles are present as well.
  for (const char* name : {"c432", "c880", "c6288", "c7552"}) {
    EXPECT_NO_THROW((void)iscas89_profile(name)) << name;
    EXPECT_EQ(iscas89_profile(name).num_dffs, 0u) << name;
  }
  EXPECT_THROW((void)iscas89_profile("c9999"), std::runtime_error);
}

TEST(Iscas89Profiles, Table2CircuitsGenerate) {
  // The five smaller Table-2 circuits build quickly; check their stats.
  for (const char* name : {"s953", "s1196", "s1238", "s1488", "s1494"}) {
    const Circuit c = make_iscas89_like(name);
    const GeneratorProfile& p = iscas89_profile(name);
    const CircuitStats s = compute_stats(c);
    EXPECT_EQ(s.gates, p.num_gates) << name;
    EXPECT_EQ(s.dffs, p.num_dffs) << name;
    EXPECT_EQ(s.inputs, p.num_inputs) << name;
    EXPECT_EQ(s.depth, p.target_depth) << name;
  }
}

class GeneratorSweep
    : public testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(GeneratorSweep, StructureAlwaysValid) {
  const auto [gates, depth] = GetParam();
  GeneratorProfile p;
  p.name = "sweep";
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.num_dffs = 3;
  p.num_gates = gates;
  p.target_depth = depth;
  const Circuit c = generate_circuit(p, 7);
  EXPECT_TRUE(c.finalized());
  EXPECT_EQ(c.gate_count(), gates);
  EXPECT_EQ(c.depth(), std::min<std::uint32_t>(depth, static_cast<std::uint32_t>(gates)));
  // Topological order covers every node exactly once.
  std::vector<int> seen(c.node_count(), 0);
  for (NodeId id : c.topo_order()) seen[id]++;
  for (NodeId id = 0; id < c.node_count(); ++id) EXPECT_EQ(seen[id], 1);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDepths, GeneratorSweep,
    testing::Combine(testing::Values<std::size_t>(10, 50, 200, 1000),
                     testing::Values<std::uint32_t>(3, 8, 20)));

}  // namespace
}  // namespace sereep
