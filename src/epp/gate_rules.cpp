#include "src/epp/gate_rules.hpp"

#include <array>
#include <cassert>
#include <vector>

namespace sereep {

namespace {

/// Associative core of a gate type (AND for NAND, OR for NOR, XOR for XNOR).
constexpr GateType gate_core(GateType type) noexcept {
  switch (type) {
    case GateType::kNand: return GateType::kAnd;
    case GateType::kNor:  return GateType::kOr;
    case GateType::kXnor: return GateType::kXor;
    default:              return type;
  }
}

Prob4 fold_core(GateType core, std::span<const Prob4> inputs) {
  Prob4 acc = inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    Prob4 next;
    for (int x = 0; x < kSymCount; ++x) {
      if (acc.p[x] == 0.0) continue;
      for (int y = 0; y < kSymCount; ++y) {
        const double w = acc.p[x] * inputs[i].p[y];
        if (w == 0.0) continue;
        next[sym_combine(core, static_cast<Sym>(x), static_cast<Sym>(y))] += w;
      }
    }
    acc = next;
  }
  return acc;
}

}  // namespace

Prob4 prob4_closed_form(GateType type, std::span<const Prob4> inputs) {
  assert(!inputs.empty());
  switch (type) {
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return prob4_not(inputs[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      // Table 1, AND row.
      double p1 = 1.0, pa_plus = 1.0, pabar_plus = 1.0;
      for (const Prob4& x : inputs) {
        p1 *= x.one();
        pa_plus *= x.one() + x.a();
        pabar_plus *= x.one() + x.abar();
      }
      Prob4 out;
      out[Sym::kOne] = p1;
      out[Sym::kA] = pa_plus - p1;
      out[Sym::kABar] = pabar_plus - p1;
      out[Sym::kZero] = 1.0 - (p1 + out[Sym::kA] + out[Sym::kABar]);
      return type == GateType::kNand ? prob4_not(out) : out;
    }
    case GateType::kOr:
    case GateType::kNor: {
      // Table 1, OR row.
      double p0 = 1.0, pa_plus = 1.0, pabar_plus = 1.0;
      for (const Prob4& x : inputs) {
        p0 *= x.zero();
        pa_plus *= x.zero() + x.a();
        pabar_plus *= x.zero() + x.abar();
      }
      Prob4 out;
      out[Sym::kZero] = p0;
      out[Sym::kA] = pa_plus - p0;
      out[Sym::kABar] = pabar_plus - p0;
      out[Sym::kOne] = 1.0 - (p0 + out[Sym::kA] + out[Sym::kABar]);
      return type == GateType::kNor ? prob4_not(out) : out;
    }
    default:
      assert(false && "prob4_closed_form: unsupported gate type");
      return Prob4{};
  }
}

Prob4 prob4_fold(GateType type, std::span<const Prob4> inputs) {
  assert(!inputs.empty());
  if (type == GateType::kBuf) return inputs[0];
  if (type == GateType::kNot) return prob4_not(inputs[0]);
  const Prob4 core = fold_core(gate_core(type), inputs);
  return output_inverted(type) ? prob4_not(core) : core;
}

Prob4 prob4_enumerate(GateType type, std::span<const Prob4> inputs) {
  assert(!inputs.empty());
  if (type == GateType::kBuf) return inputs[0];
  if (type == GateType::kNot) return prob4_not(inputs[0]);

  const std::size_t n = inputs.size();
  std::vector<int> sym(n, 0);
  std::vector<bool> bits0(n), bits1(n);
  Prob4 out;
  while (true) {
    double weight = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight *= inputs[i].p[sym[i]];
    }
    if (weight != 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        bits0[i] = sym_value(static_cast<Sym>(sym[i]), false);
        bits1[i] = sym_value(static_cast<Sym>(sym[i]), true);
      }
      // std::vector<bool> cannot back a span; evaluate via scalar loop.
      auto eval_bits = [&](const std::vector<bool>& bits) {
        bool acc;
        switch (gate_core(type)) {
          case GateType::kAnd: {
            acc = true;
            for (bool b : bits) acc = acc && b;
            break;
          }
          case GateType::kOr: {
            acc = false;
            for (bool b : bits) acc = acc || b;
            break;
          }
          case GateType::kXor: {
            acc = false;
            for (bool b : bits) acc = acc != b;
            break;
          }
          default:
            acc = bits[0];
            break;
        }
        return output_inverted(type) ? !acc : acc;
      };
      out[sym_from_values(eval_bits(bits0), eval_bits(bits1))] += weight;
    }
    // Advance the mixed-radix counter.
    std::size_t d = 0;
    while (d < n && ++sym[d] == kSymCount) {
      sym[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return out;
}

Prob4 prob4_propagate(GateType type, std::span<const Prob4> inputs) {
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
      return prob4_closed_form(type, inputs);
    default:
      return prob4_fold(type, inputs);
  }
}

namespace {

/// Three-symbol polarity-blind algebra for the A1 ablation: E (erroneous,
/// polarity unknown), 0, 1. Because polarity is unknown, two E inputs can
/// never be recognized as cancelling (a vs ā) — E combined with E stays E.
/// That is precisely the information the paper's a/ā split adds.
enum class Sym3 : int { kE = 0, kZero = 1, kOne = 2 };

Sym3 combine3(GateType core, Sym3 x, Sym3 y) {
  const auto is_e = [](Sym3 s) { return s == Sym3::kE; };
  switch (core) {
    case GateType::kAnd:
      if (x == Sym3::kZero || y == Sym3::kZero) return Sym3::kZero;
      if (is_e(x) || is_e(y)) return Sym3::kE;
      return Sym3::kOne;
    case GateType::kOr:
      if (x == Sym3::kOne || y == Sym3::kOne) return Sym3::kOne;
      if (is_e(x) || is_e(y)) return Sym3::kE;
      return Sym3::kZero;
    default:  // XOR: any erroneous operand leaves the output erroneous
      if (is_e(x) || is_e(y)) return Sym3::kE;
      return x == y ? Sym3::kZero : Sym3::kOne;
  }
}

Sym3 not3(Sym3 s) {
  if (s == Sym3::kZero) return Sym3::kOne;
  if (s == Sym3::kOne) return Sym3::kZero;
  return Sym3::kE;
}

}  // namespace

Prob4 prob4_propagate_no_polarity(GateType type,
                                  std::span<const Prob4> inputs) {
  // Project each input onto {E, 0, 1} (pooling a and ā into E), fold with
  // the polarity-blind algebra, and report the result with all error mass on
  // the a-symbol.
  const auto project = [](const Prob4& d) {
    return std::array<double, 3>{d.a() + d.abar(), d.zero(), d.one()};
  };
  if (type == GateType::kBuf) return inputs[0];
  if (type == GateType::kNot) return prob4_not(inputs[0]);

  const GateType core = type == GateType::kNand  ? GateType::kAnd
                        : type == GateType::kNor ? GateType::kOr
                        : type == GateType::kXnor ? GateType::kXor
                                                  : type;
  std::array<double, 3> acc = project(inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const std::array<double, 3> next_in = project(inputs[i]);
    std::array<double, 3> next{0, 0, 0};
    for (int x = 0; x < 3; ++x) {
      if (acc[x] == 0.0) continue;
      for (int y = 0; y < 3; ++y) {
        const double w = acc[x] * next_in[y];
        if (w == 0.0) continue;
        next[static_cast<int>(combine3(core, static_cast<Sym3>(x),
                                       static_cast<Sym3>(y)))] += w;
      }
    }
    acc = next;
  }
  if (output_inverted(type)) {
    std::array<double, 3> inv{0, 0, 0};
    for (int x = 0; x < 3; ++x) {
      inv[static_cast<int>(not3(static_cast<Sym3>(x)))] += acc[x];
    }
    acc = inv;
  }
  Prob4 out;
  out[Sym::kA] = acc[0];
  out[Sym::kZero] = acc[1];
  out[Sym::kOne] = acc[2];
  return out;
}

}  // namespace sereep
