// A2 ablation: which signal-probability engine feeds the EPP engine?
//
// The paper uses a topological SP pass (Parker-McCluskey, its reference [5])
// and reports its cost in the SPT column. This ablation swaps the SP source
// (Parker-McCluskey / exact enumeration / Monte-Carlo) and reports both the
// SPT cost and the resulting EPP accuracy — quantifying how much of the EPP
// error comes from approximate off-path SPs vs the EPP step itself.
//
// Flags: --vectors=N (default 32768)  --sites=K (default 60)
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "sereep/engine.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/netlist/compiled.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sereep;
  bench::Flags flags(argc, argv);
  const auto vectors = static_cast<std::size_t>(flags.get_int("vectors", 32768));
  const auto max_sites = static_cast<std::size_t>(flags.get_int("sites", 60));

  std::printf("Ablation A2 — SP engine feeding EPP (small circuits, exact SP feasible)\n\n");
  AsciiTable table({"Circuit", "SP engine", "SPT(ms)", "MeanErr%", "MaxErr%"});

  struct Engine {
    const char* name;
    // The compiled view is prebuilt per circuit OUTSIDE the SPT clock:
    // every production caller of the CSR pass reuses a view it already
    // holds, so the column must show the pass's own cost, not the flatten.
    std::function<SignalProbabilities(const Circuit&, const CompiledCircuit&)>
        run;
  };
  const Engine engines[] = {
      {"parker-mccluskey",
       [](const Circuit& c, const CompiledCircuit&) {
         return parker_mccluskey_sp(c);
       }},
      {"pm-compiled-csr",
       [](const Circuit&, const CompiledCircuit& cc) {
         // Bit-identical to parker-mccluskey (same arithmetic over the CSR
         // view); listed so the SPT column shows the pass's own cost.
         return compiled_parker_mccluskey_sp(cc);
       }},
      {"exact",
       [](const Circuit& c, const CompiledCircuit&) {
         ExactSpOptions opt;
         // 2^18 weighted evaluations per node keeps the whole sweep in
         // seconds; wider supports fall back to Parker-McCluskey below.
         opt.max_support = 18;
         SignalProbabilities sp = exact_sp(c, opt);
         // Fall back to PM for any node whose support overflowed the limit.
         const SignalProbabilities pm = parker_mccluskey_sp(c);
         for (std::size_t i = 0; i < sp.p1.size(); ++i) {
           if (std::isnan(sp.p1[i])) sp.p1[i] = pm.p1[i];
         }
         return sp;
       }},
      {"monte-carlo-64k",
       [](const Circuit& c, const CompiledCircuit&) {
         return monte_carlo_sp(c, 1 << 16);
       }},
  };

  for (const char* name : {"c17", "s27", "s208", "s298", "s344"}) {
    const Circuit c = make_circuit(name);
    const CompiledCircuit compiled(c);
    FaultInjector fi(c);
    McOptions mc;
    mc.num_vectors = vectors;

    // Shared MC reference per circuit.
    std::vector<NodeId> sites = subsample_sites(error_sites(c), max_sites);
    std::vector<double> ref;
    for (NodeId s : sites) ref.push_back(fi.run_site(s, mc).probability());

    for (const Engine& e : engines) {
      Stopwatch clock;
      const SignalProbabilities sp = e.run(c, compiled);
      const double spt_ms = clock.millis();
      // The EPP step resolves through the engine registry over the ablated
      // SP assignment — the same IEppEngine route the Session serves, with
      // an externally supplied context.
      EngineContext ctx;
      ctx.circuit = &c;
      ctx.compiled = &compiled;
      ctx.sp = &sp;
      const auto engine = EngineRegistry::instance().create("reference", ctx);
      double mean = 0, max = 0;
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const double d =
            100 * std::fabs(engine->p_sensitized(sites[i]) - ref[i]);
        mean += d;
        max = std::max(max, d);
      }
      mean /= static_cast<double>(sites.size());
      table.add_row({name, e.name, format_fixed(spt_ms, 3),
                     format_fixed(mean, 2), format_fixed(max, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: exact SP narrows but does not eliminate the\n"
              "EPP-vs-MC gap (residual error stems from off-path correlation\n"
              "at reconvergent gates, which no SP engine can repair).\n");
  return 0;
}
