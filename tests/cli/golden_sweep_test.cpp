// Golden-file regression for the CLI sweep output.
//
// `sereep sweep --csv` emits sweep_csv() verbatim; these tests pin that text
// on the embedded c17 and s27 netlists against CSVs committed under
// tests/data/, with probabilities at full round-trip precision (%.17g). Any
// drift — a format change, a column rename, or a single ULP of numeric
// movement in the all-nodes sweep — fails ctest here instead of silently
// changing the Table-2 harness downstream.
//
// To regenerate after an INTENTIONAL change (document it in the PR):
//   build/sereep sweep c17 --csv=tests/data/sweep_c17.golden.csv
//   build/sereep sweep s27 --csv=tests/data/sweep_s27.golden.csv
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/netlist/benchmarks.hpp"
#include "src/report/report.hpp"

namespace sereep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string golden_path(const char* name) {
  return std::string(SEREEP_SOURCE_DIR) + "/tests/data/" + name;
}

TEST(GoldenSweep, C17MatchesCommittedCsv) {
  EXPECT_EQ(sweep_csv(make_c17(), 1),
            read_file(golden_path("sweep_c17.golden.csv")));
}

TEST(GoldenSweep, S27MatchesCommittedCsv) {
  EXPECT_EQ(sweep_csv(make_s27(), 1),
            read_file(golden_path("sweep_s27.golden.csv")));
}

TEST(GoldenSweep, TextIsIdenticalAtAnyThreadCount) {
  // The CSV is a pure function of the netlist: the batched parallel sweep
  // underneath must not let scheduling reach the output.
  const Circuit c = make_s27();
  const std::string t1 = sweep_csv(c, 1);
  EXPECT_EQ(sweep_csv(c, 2), t1);
  EXPECT_EQ(sweep_csv(c, 8), t1);
}

TEST(GoldenSweep, AllThreeEnginesMatchTheGoldens) {
  // `sereep sweep --engine=...` must be a pure re-route: every engine of the
  // oracle hierarchy reproduces the committed bytes exactly.
  for (const SweepEngine engine : {SweepEngine::kReference,
                                   SweepEngine::kCompiled,
                                   SweepEngine::kBatched}) {
    EXPECT_EQ(sweep_csv(make_c17(), 1, engine),
              read_file(golden_path("sweep_c17.golden.csv")));
    EXPECT_EQ(sweep_csv(make_s27(), 1, engine),
              read_file(golden_path("sweep_s27.golden.csv")));
  }
}

TEST(GoldenSweep, EngineSelectorParses) {
  EXPECT_EQ(parse_sweep_engine("reference"), SweepEngine::kReference);
  EXPECT_EQ(parse_sweep_engine("compiled"), SweepEngine::kCompiled);
  EXPECT_EQ(parse_sweep_engine("batched"), SweepEngine::kBatched);
  EXPECT_EQ(parse_sweep_engine("turbo"), std::nullopt);
}

}  // namespace
}  // namespace sereep
