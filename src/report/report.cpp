#include "src/report/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sereep/session.hpp"
#include "src/epp/compiled_epp.hpp"
#include "src/epp/epp_engine.hpp"
#include "src/netlist/compiled.hpp"
#include "src/util/csv.hpp"
#include "src/netlist/stats.hpp"
#include "src/ser/ser_estimator.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/sigprob/signal_prob.hpp"
#include "src/util/strings.hpp"
#include "src/util/timer.hpp"

namespace sereep {

std::string generate_report(const Circuit& circuit,
                            const ReportOptions& options) {
  Options session_options;
  if (options.sequential_sp && !circuit.dffs().empty()) {
    session_options.sp.source = SpSource::kSequentialFixedPoint;
  }
  Session session(circuit, std::move(session_options));
  return generate_report(session, options);
}

std::string generate_report(Session& session, const ReportOptions& options) {
  const Circuit& circuit = session.circuit();
  std::ostringstream md;
  const CircuitStats stats = compute_stats(circuit);

  md << "# Soft-error reliability report: " << circuit.name() << "\n\n";

  // --- 1. Structure -------------------------------------------------------
  md << "## Circuit structure\n\n";
  md << "| Metric | Value |\n|---|---|\n";
  md << "| Combinational gates | " << stats.gates << " |\n";
  md << "| Primary inputs | " << stats.inputs << " |\n";
  md << "| Primary outputs | " << stats.outputs << " |\n";
  md << "| Flip-flops | " << stats.dffs << " |\n";
  md << "| Logic depth | " << stats.depth << " |\n";
  md << "| Fanout stems (>=2) | " << stats.fanout_stems << " |\n\n";

  // --- 2. Signal probability ----------------------------------------------
  // Session artifacts: the compiled view, SP pass and sweep below are built
  // once and shared with anything else the caller runs on this session. The
  // flatten is hoisted out of the SP clock (the printed time is the paper's
  // SPT column — the pass's own cost); on a pre-warmed session both timings
  // read ~0 ms, correctly: nothing was recomputed.
  (void)session.compiled();
  Stopwatch sp_clock;
  const SignalProbabilities& sp = session.sp();
  const double spt_ms = sp_clock.millis();
  std::ostringstream sp_note;
  switch (session.options().sp.source) {
    case SpSource::kParkerMcCluskey:
      sp_note << "Parker-McCluskey single pass (compiled CSR), uniform inputs";
      break;
    case SpSource::kSequentialFixedPoint:
      sp_note << "sequential fixed point";
      if (const auto& diag = session.sp_diagnostics()) {
        sp_note << ", " << diag->iterations << " iterations, residual "
                << diag->residual;
        if (!diag->converged) sp_note << " — NOT converged";
      }
      break;
    case SpSource::kMonteCarlo:
      sp_note << "Monte-Carlo sampling, "
              << session.options().sp.monte_carlo_vectors << " vectors";
      break;
  }
  md << "## Signal probability\n\n";
  md << "Engine: " << sp_note.str() << " (" << format_fixed(spt_ms, 3)
     << " ms).\n\n";

  // --- 3. SER estimation ---------------------------------------------------
  Stopwatch ser_clock;
  const CircuitSer& ser = session.ser();
  const double sert_ms = ser_clock.millis();
  const auto ranked = ser.ranked();

  md << "## SER estimate\n\n";
  md << "Total circuit SER: **" << format_fixed(ser.total_fit(), 2)
     << " FIT** (" << ser.nodes.size() << " error sites analyzed in "
     << format_fixed(sert_ms, 1) << " ms).\n\n";
  md << "| Rank | Node | Type | P_sens | SER share | Cumulative |\n";
  md << "|---|---|---|---|---|---|\n";
  double cumulative = 0;
  for (std::size_t i = 0; i < std::min(options.top_nodes, ranked.size());
       ++i) {
    const NodeSer& n = ranked[i];
    cumulative += n.ser;
    md << "| " << (i + 1) << " | `" << circuit.node(n.node).name << "` | "
       << gate_type_name(circuit.type(n.node)) << " | "
       << format_fixed(n.p_sensitized, 4) << " | "
       << format_fixed(100 * n.ser / ser.total_ser, 1) << "% | "
       << format_fixed(100 * cumulative / ser.total_ser, 1) << "% |\n";
  }
  md << "\n";

  // --- 4. Hardening recommendation ----------------------------------------
  const HardeningPlan plan = select_hardening(ser, options.hardening_target);
  md << "## Hardening recommendation\n\n";
  md << "Protecting **" << plan.protect.size() << " nodes** ("
     << format_fixed(100.0 * static_cast<double>(plan.protect.size()) /
                         static_cast<double>(std::max<std::size_t>(
                             ser.nodes.size(), 1)),
                     1)
     << "% of sites) reaches a "
     << format_fixed(100 * plan.reduction(), 1)
     << "% SER reduction (target "
     << format_fixed(100 * options.hardening_target, 0) << "%).\n\n";
  md << "Nodes: ";
  for (std::size_t i = 0; i < plan.protect.size(); ++i) {
    if (i) md << ", ";
    if (i == 12 && plan.protect.size() > 14) {
      md << "… (" << plan.protect.size() - i << " more)";
      break;
    }
    md << "`" << circuit.node(plan.protect[i]).name << "`";
  }
  md << "\n\n";

  // --- 5. Optional validation ----------------------------------------------
  if (options.validate_with_simulation) {
    EppEngine engine(circuit, sp);
    FaultInjector injector(circuit);
    McOptions mc;
    mc.num_vectors = options.validation_vectors;
    double mean = 0, worst = 0;
    std::size_t count = 0;
    for (NodeId site : subsample_sites(error_sites(circuit),
                                       options.validation_sites)) {
      const double d = std::fabs(engine.p_sensitized(site) -
                                 injector.run_site(site, mc).probability());
      mean += d;
      worst = std::max(worst, d);
      ++count;
    }
    mean /= static_cast<double>(std::max<std::size_t>(count, 1));
    md << "## Validation against fault injection\n\n";
    md << "Sampled " << count << " sites at " << options.validation_vectors
       << " vectors each: mean |EPP − MC| = **"
       << format_fixed(100 * mean, 2) << "%**, worst "
       << format_fixed(100 * worst, 2)
       << "% (paper reports 5.4% average).\n";
  }
  return md.str();
}

std::optional<SweepEngine> parse_sweep_engine(std::string_view name) {
  if (name == "reference") return SweepEngine::kReference;
  if (name == "compiled") return SweepEngine::kCompiled;
  if (name == "batched") return SweepEngine::kBatched;
  return std::nullopt;
}

std::string_view sweep_engine_name(SweepEngine engine) {
  switch (engine) {
    case SweepEngine::kReference:
      return "reference";
    case SweepEngine::kCompiled:
      return "compiled";
    case SweepEngine::kBatched:
      return "batched";
  }
  return "batched";
}

std::vector<double> sweep_p_sensitized(const Circuit& circuit,
                                       const CompiledCircuit& compiled,
                                       const SignalProbabilities& sp,
                                       SweepEngine engine, unsigned threads) {
  // One dispatch, resolved through the registry — the same route the CLI's
  // --engine flag and the Session take (bit-for-bit identical across keys).
  EngineContext context;
  context.circuit = &circuit;
  context.compiled = &compiled;
  context.sp = &sp;
  const std::unique_ptr<IEppEngine> e =
      EngineRegistry::instance().create(sweep_engine_name(engine), context);
  const std::vector<NodeId> sites = error_sites(circuit);
  const std::vector<double> per_site = e->sweep_p_sensitized(sites, threads);
  std::vector<double> p(circuit.node_count(), 0.0);
  for (std::size_t i = 0; i < sites.size(); ++i) p[sites[i]] = per_site[i];
  return p;
}

std::string sweep_csv(const Circuit& circuit, unsigned threads,
                      SweepEngine engine) {
  Options options;
  options.engine = std::string(sweep_engine_name(engine));
  options.threads = threads;
  Session session(circuit, std::move(options));
  return session.sweep_csv();
}

}  // namespace sereep
