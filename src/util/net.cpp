#include "src/util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sereep {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("host spec '" + spec +
                                "' is not of the form host:port");
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  if (hp.host.empty()) {
    throw std::invalid_argument("host spec '" + spec + "' has an empty host");
  }
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("host spec '" + spec +
                                "' has a non-numeric port");
  }
  const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
  if (port < 1 || port > 65535) {
    throw std::invalid_argument("host spec '" + spec +
                                "' port is out of range (1..65535)");
  }
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

int tcp_listen(const std::string& bind_addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  set_cloexec(fd);
  // Restarted daemons must be able to rebind the port while old connections
  // linger in TIME_WAIT.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp: bind address '" + bind_addr +
                             "' is not a valid IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind " + bind_addr + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("listen");
  }
  return fd;
}

std::uint16_t tcp_local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

int tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                   &res);
      rc != 0) {
    throw std::runtime_error("tcp: resolve " + host + ": " +
                             ::gai_strerror(rc));
  }
  std::string last_error = "no addresses";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    set_cloexec(fd);
    // Non-blocking connect + poll bounds the handshake: a blackholed host
    // must surface as a named deadline failure (retryable by the shard
    // supervisor), never an indefinite hang inside a sweep.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc < 0 && errno == EINPROGRESS) {
      struct pollfd pfd = {.fd = fd, .events = POLLOUT, .revents = 0};
      do {
        rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        ::close(fd);
        last_error = "connect deadline (" + std::to_string(timeout_ms) +
                     " ms) expired";
        continue;
      }
      int err = 0;
      socklen_t err_len = sizeof err;
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
          err != 0) {
        ::close(fd);
        last_error = std::string("connect: ") +
                     std::strerror(err != 0 ? err : errno);
        continue;
      }
    } else if (rc < 0) {
      ::close(fd);
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("tcp: connect " + host + ":" + port_str + ": " +
                           last_error);
}

}  // namespace sereep
