#include "src/netlist/cone_cluster.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

#include "src/util/rng.hpp"

namespace sereep {

namespace {

/// Bloom bit of one sink node: every sink hashes to one of the 64 signature
/// bits (splitmix64 mixes the id so consecutive sinks land on unrelated
/// bits).
std::uint64_t sink_bit(NodeId id) {
  std::uint64_t state = id;
  return std::uint64_t{1} << (splitmix64(state) & 63);
}

/// What a fanout edge into `consumer` contributes to a signature: a DFF is an
/// observation point (its own bit) — the cone never continues through it —
/// while a gate passes its whole downstream sink set.
std::uint64_t pass_through(const CompiledCircuit& c, NodeId consumer,
                           const std::vector<std::uint64_t>& sig) {
  return c.is_dff(consumer) ? sink_bit(consumer) : sig[consumer];
}

/// Same edge rule for the immediate-dominator sink: an error entering a DFF
/// is latched there first; through a gate it inherits the gate's dominator.
NodeId dom_through(const CompiledCircuit& c, NodeId consumer,
                   const std::vector<NodeId>& dom) {
  return c.is_dff(consumer) ? consumer : dom[consumer];
}

/// Dominator fold over one node's consumers: the unique first-crossed sink
/// if all paths agree, else kInvalidNode. A sink is its own dominator (the
/// error is observed at the node before travelling anywhere).
NodeId fold_dominator(const CompiledCircuit& c, NodeId id,
                      const std::vector<NodeId>& dom) {
  if (c.is_sink(id)) return id;
  NodeId d = kInvalidNode;
  bool first = true;
  for (NodeId consumer : c.fanout(id)) {
    const NodeId cd = dom_through(c, consumer, dom);
    if (cd == kInvalidNode) return kInvalidNode;
    if (first) {
      d = cd;
      first = false;
    } else if (cd != d) {
      return kInvalidNode;
    }
  }
  return d;  // kInvalidNode when the node has no consumers (dead cone)
}

/// Nearest-sink fold: the reachable sink of minimum DFF-adjusted topo rank
/// (the first sink the engines' rank-filtered fold visits) — the level-2
/// key's fallback when no unique dominator exists.
NodeId fold_nearest(const CompiledCircuit& c, NodeId id,
                    const std::vector<NodeId>& near) {
  const auto rank_less = [&](NodeId a, NodeId b) {
    if (a == kInvalidNode) return false;
    if (b == kInvalidNode) return true;
    if (c.topo_pos(a) != c.topo_pos(b)) return c.topo_pos(a) < c.topo_pos(b);
    return a < b;
  };
  NodeId best = c.is_sink(id) ? id : kInvalidNode;
  for (NodeId consumer : c.fanout(id)) {
    const NodeId cand = c.is_dff(consumer) ? consumer : near[consumer];
    if (rank_less(cand, best)) best = cand;
  }
  return best;
}

}  // namespace

ConeClusterPlanner::ConeClusterPlanner(const CompiledCircuit& circuit)
    : circuit_(circuit),
      sig_(circuit.node_count(), 0),
      dom_(circuit.node_count(), kInvalidNode) {
  const std::size_t n = circuit.node_count();

  // Reverse-topological signature + dominator pass, same two-pass structure
  // as the cone-size estimate (compiled.cpp): descending bucket level covers
  // the combinational nodes (a gate sits strictly above its non-DFF fanins,
  // so every non-DFF consumer is processed first), then DFF sites, whose
  // consumers only ever contribute pass-1 values or plain sink bits.
  // The two level-2 ingredients recurse independently (a fallback value must
  // never feed the unique-dominator agreement test), so each gets its own
  // table; dom_ stores the merged key.
  std::vector<NodeId> unique_dom(n, kInvalidNode);
  std::vector<NodeId> nearest(n, kInvalidNode);
  std::vector<std::vector<NodeId>> by_level(circuit.bucket_count());
  for (NodeId id = 0; id < n; ++id) {
    if (!circuit.is_dff(id)) by_level[circuit.bucket_level(id)].push_back(id);
  }
  for (std::size_t b = by_level.size(); b-- > 0;) {
    for (NodeId id : by_level[b]) {
      std::uint64_t s = circuit.is_sink(id) ? sink_bit(id) : 0;
      for (NodeId consumer : circuit.fanout(id)) {
        s |= pass_through(circuit, consumer, sig_);
      }
      sig_[id] = s;
      unique_dom[id] = fold_dominator(circuit, id, unique_dom);
      nearest[id] = fold_nearest(circuit, id, nearest);
      dom_[id] = unique_dom[id] != kInvalidNode ? unique_dom[id] : nearest[id];
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (!circuit.is_dff(id)) continue;
    std::uint64_t s = sink_bit(id);  // a DFF site is a sink of its own cone
    for (NodeId consumer : circuit.fanout(id)) {
      s |= pass_through(circuit, consumer, sig_);
    }
    sig_[id] = s;
    dom_[id] = id;  // the upset state bit is observed at the FF itself first
  }
}

void ConeClusterPlanner::set_preplanned(std::vector<NodeId> sites,
                                        std::vector<ConeCluster> clusters,
                                        PlanLevel level) {
  preplan_sites_ = std::move(sites);
  preplan_clusters_ = std::move(clusters);
  preplan_level_ = level;
  has_preplan_ = true;
}

std::vector<ConeCluster> ConeClusterPlanner::plan(std::span<const NodeId> sites,
                                                  PlanLevel level) const {
  if (has_preplan_ && level == preplan_level_ &&
      std::equal(sites.begin(), sites.end(), preplan_sites_.begin(),
                 preplan_sites_.end())) {
    return preplan_clusters_;
  }
  // Scratch-memory cap: the batched engine allocates one lane-plane entry
  // per (merged-cone slot, member site), and the merged cone is bounded both
  // by the sum of the member cone estimates (disjoint worst case — Bloom
  // collisions can cluster disjoint cones) and by the circuit itself.
  // Bounding lanes x that merged bound keeps per-worker scratch a few
  // hundred MB even on million-gate netlists while leaving full 64-way
  // sharing available at every size the repo currently runs.
  constexpr double kScratchEntryBudget = 1 << 23;

  const double n = static_cast<double>(circuit_.node_count());
  const auto capped_estimate = [&](NodeId site) {
    // The path-count estimate can overshoot exponentially; a cone can never
    // exceed the circuit.
    return std::min(circuit_.cone_size_estimate(site), n);
  };
  const auto fits = [&](const ConeCluster& cur, double est) {
    return cur.members.size() < kMaxLanes &&
           static_cast<double>(cur.members.size() + 1) *
                   std::min(cur.mass + est, n) <=
               kScratchEntryBudget;
  };

  // ---- level 1: greedy packing in Bloom-signature order --------------------
  // Signature-sorted order: equal-signature sites become adjacent, and
  // topological position keeps sites of one region together within a
  // signature run.
  std::vector<std::uint32_t> order(sites.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (sig_[sites[a]] != sig_[sites[b]]) {
      return sig_[sites[a]] < sig_[sites[b]];
    }
    if (circuit_.topo_pos(sites[a]) != circuit_.topo_pos(sites[b])) {
      return circuit_.topo_pos(sites[a]) < circuit_.topo_pos(sites[b]);
    }
    return sites[a] < sites[b];
  });

  std::vector<ConeCluster> clusters;
  std::uint64_t cluster_sig = 0;
  for (std::uint32_t idx : order) {
    const NodeId site = sites[idx];
    const std::uint64_t sig = sig_[site];
    const double est = capped_estimate(site);

    bool join = false;
    if (!clusters.empty() && fits(clusters.back(), est)) {
      // Share a traversal only when the sink sets plausibly overlap:
      // identical signatures (the common case — chains and reconvergent
      // regions), or a Jaccard overlap of at least one half. Two empty
      // signatures are both sink-free cones and trivially share.
      const std::uint64_t both = sig & cluster_sig;
      const std::uint64_t any = sig | cluster_sig;
      join = sig == cluster_sig ||
             (any != 0 && 2 * std::popcount(both) >= std::popcount(any));
    }
    if (!join) {
      clusters.emplace_back();
      cluster_sig = 0;
    }
    ConeCluster& cur = clusters.back();
    cur.members.push_back(idx);
    cur.mass += est;
    cluster_sig |= sig;
  }

  // ---- level 2: regroup singletons by immediate-dominator sink -------------
  // Sites the Bloom pass left alone (rare signatures, asymmetric overlaps
  // failing the Jaccard test) still share their sink funnel whenever their
  // dominator-sink key (unique first-crossed sink, else nearest reachable
  // sink) is the same node; pack those runs together. Only sink-free cones
  // (key == kInvalidNode) are guaranteed to stay singleton.
  if (level == PlanLevel::kTwoLevel) {
    std::vector<std::uint32_t> lone;  // site indices from singleton clusters
    std::erase_if(clusters, [&](const ConeCluster& c) {
      if (c.members.size() != 1 ||
          dominator_sink(sites[c.members[0]]) == kInvalidNode) {
        return false;
      }
      lone.push_back(c.members[0]);
      return true;
    });
    std::sort(lone.begin(), lone.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const NodeId da = dominator_sink(sites[a]);
                const NodeId db = dominator_sink(sites[b]);
                if (da != db) {
                  if (circuit_.topo_pos(da) != circuit_.topo_pos(db)) {
                    return circuit_.topo_pos(da) < circuit_.topo_pos(db);
                  }
                  return da < db;
                }
                if (circuit_.topo_pos(sites[a]) != circuit_.topo_pos(sites[b])) {
                  return circuit_.topo_pos(sites[a]) <
                         circuit_.topo_pos(sites[b]);
                }
                return sites[a] < sites[b];
              });
    NodeId open_dom = kInvalidNode;
    for (std::uint32_t idx : lone) {
      const NodeId d = dominator_sink(sites[idx]);
      const double est = capped_estimate(sites[idx]);
      if (clusters.empty() || d != open_dom || !fits(clusters.back(), est)) {
        clusters.emplace_back();
        open_dom = d;
      }
      ConeCluster& cur = clusters.back();
      cur.members.push_back(idx);
      cur.mass += est;
    }
  }

  // Biggest first: the parallel sweep drains heavy clusters before the tail
  // of small ones, exactly like the per-site scheduler it replaces.
  std::stable_sort(clusters.begin(), clusters.end(),
                   [](const ConeCluster& a, const ConeCluster& b) {
                     return a.mass > b.mass;
                   });
  return clusters;
}

}  // namespace sereep
