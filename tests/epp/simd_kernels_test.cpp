// Unit pins for the lane-plane SIMD kernels (src/util/simd.hpp).
//
// Contract: for every lane of every active group, a kernel's output equals
// the scalar gate_rules path (prob4_propagate — closed form for the
// AND/OR/NOT/BUF families, symbol-algebra fold for XOR/XNOR) applied to
// that lane's blended inputs, EXPECT_EQ on all four Prob4 components with
// no tolerance. The sweep covers every combinational gate type × a pool of
// symbol-combination distributions (pure symbols, exact-zero masses, the
// error-site seed, off-path corners, random mixtures), arities 1..4, random
// on/off-path masks, multi-group strides with inactive-group skipping, and
// the attenuation kernel.
#include "src/util/simd.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/epp/gate_rules.hpp"
#include "src/epp/prob4.hpp"
#include "src/util/rng.hpp"

namespace sereep {
namespace {

constexpr GateType kCombTypes[] = {GateType::kBuf, GateType::kNot,
                                   GateType::kAnd, GateType::kNand,
                                   GateType::kOr,  GateType::kNor,
                                   GateType::kXor, GateType::kXnor};

/// Distribution pool spanning the symbol combinations the engines produce:
/// the four pure symbols, the error-site seed, off-path corners (sp = 0, 1,
/// 0.5), exact a/ā cancellation pairs, and a seeded random mixture slot
/// (index 9) refreshed per draw.
Prob4 pure(Sym s) {
  Prob4 d;
  d[s] = 1.0;
  return d;
}

Prob4 random_mix(Rng& rng) {
  Prob4 d;
  double total = 0.0;
  for (int s = 0; s < kSymCount; ++s) {
    d.p[s] = rng.uniform();
    total += d.p[s];
  }
  for (int s = 0; s < kSymCount; ++s) d.p[s] /= total;
  // Sprinkle exact zeros so the scalar fold's zero-skip paths are hit.
  if (rng.below(3) == 0) d.p[rng.below(kSymCount)] = 0.0;
  return d;
}

Prob4 draw(Rng& rng) {
  switch (rng.below(10)) {
    case 0: return pure(Sym::kZero);
    case 1: return pure(Sym::kOne);
    case 2: return pure(Sym::kA);
    case 3: return pure(Sym::kABar);
    case 4: return Prob4::error_site();
    case 5: return Prob4::off_path(0.0);
    case 6: return Prob4::off_path(1.0);
    case 7: return Prob4::off_path(0.5);
    case 8: {
      Prob4 d;  // exact a/ā split — the polarity-cancellation corner
      d[Sym::kA] = 0.5;
      d[Sym::kABar] = 0.5;
      return d;
    }
    default: return random_mix(rng);
  }
}

/// One randomized fanin: a lane-plane block + on-mask + off constant.
struct TestFanin {
  std::vector<double> block;  ///< 4 * stride doubles, plane-major
  simd::FaninLanes lanes;
  std::vector<Prob4> per_lane;  ///< ground truth per lane
};

TestFanin make_fanin(Rng& rng, std::size_t stride) {
  TestFanin f;
  f.block.assign(kSymCount * stride, 0.0);
  f.per_lane.resize(stride);
  f.lanes.off = Prob4::off_path(rng.uniform());
  std::uint64_t on = 0;
  for (std::size_t l = 0; l < stride; ++l) {
    const Prob4 d = draw(rng);
    for (int s = 0; s < kSymCount; ++s) {
      f.block[static_cast<std::size_t>(s) * stride + l] = d.p[s];
    }
    const bool on_path = rng.below(2) == 0;
    if (on_path) on |= std::uint64_t{1} << l;
    f.per_lane[l] = on_path ? d : f.lanes.off;
  }
  f.lanes.on = on;
  f.lanes.src = on != 0 ? f.block.data() : nullptr;
  return f;
}

class SimdGateKernel : public ::testing::TestWithParam<GateType> {};

TEST_P(SimdGateKernel, MatchesScalarGateRulesPerLane) {
  const GateType type = GetParam();
  const std::size_t max_arity =
      (type == GateType::kBuf || type == GateType::kNot) ? 1 : 4;
  Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(type));
  for (const std::size_t stride : {std::size_t{8}, std::size_t{24}}) {
    // Skip a group on the wide stride to exercise inactive-group masking.
    const simd::GroupMask active =
        stride == 8 ? 0b1 : 0b101;  // groups {0} / {0, 2}
    for (std::size_t arity = 1; arity <= max_arity; ++arity) {
      for (int round = 0; round < 8; ++round) {
        std::vector<TestFanin> fanins;
        std::vector<simd::FaninLanes> lanes;
        for (std::size_t i = 0; i < arity; ++i) {
          fanins.push_back(make_fanin(rng, stride));
        }
        for (const TestFanin& f : fanins) lanes.push_back(f.lanes);

        // Poison the output so untouched (inactive-group) lanes are visible.
        std::vector<double> out(kSymCount * stride, -7.0);
        simd::propagate_gate(type, out.data(), lanes.data(), lanes.size(),
                             active, stride);

        std::vector<Prob4> scratch(arity);
        for (std::size_t l = 0; l < stride; ++l) {
          const bool lane_active =
              (active >> (l / simd::kLaneWidth)) & 1;
          if (!lane_active) {
            for (int s = 0; s < kSymCount; ++s) {
              EXPECT_EQ(out[static_cast<std::size_t>(s) * stride + l], -7.0)
                  << "inactive group written, lane " << l;
            }
            continue;
          }
          for (std::size_t i = 0; i < arity; ++i) {
            scratch[i] = fanins[i].per_lane[l];
          }
          const Prob4 want = prob4_propagate(type, scratch);
          for (int s = 0; s < kSymCount; ++s) {
            EXPECT_EQ(out[static_cast<std::size_t>(s) * stride + l], want.p[s])
                << gate_type_name(type) << " arity " << arity << " lane " << l
                << " sym " << s;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGateTypes, SimdGateKernel,
                         ::testing::ValuesIn(kCombTypes),
                         [](const ::testing::TestParamInfo<GateType>& info) {
                           return std::string(gate_type_name(info.param));
                         });

TEST(SimdKernels, AttenuateMatchesScalarPostprocessing) {
  Rng rng(77);
  const std::size_t stride = 16;
  for (const double survival : {0.5, 0.9, 0.999}) {
    for (int round = 0; round < 8; ++round) {
      const double sp_one = rng.uniform();
      std::vector<double> block(kSymCount * stride);
      std::vector<Prob4> lanes(stride);
      for (std::size_t l = 0; l < stride; ++l) {
        lanes[l] = random_mix(rng);
        for (int s = 0; s < kSymCount; ++s) {
          block[static_cast<std::size_t>(s) * stride + l] = lanes[l].p[s];
        }
      }
      simd::attenuate(block.data(), survival, sp_one, 0b11, stride);
      for (std::size_t l = 0; l < stride; ++l) {
        Prob4 want = lanes[l];
        const double killed = want.error_mass() * (1.0 - survival);
        want[Sym::kA] *= survival;
        want[Sym::kABar] *= survival;
        want[Sym::kOne] += killed * sp_one;
        want[Sym::kZero] += killed * (1.0 - sp_one);
        for (int s = 0; s < kSymCount; ++s) {
          EXPECT_EQ(block[static_cast<std::size_t>(s) * stride + l],
                    want.p[s])
              << "survival " << survival << " lane " << l;
        }
      }
    }
  }
}

TEST(SimdKernels, SeedAndCopyAreExactDataMovement) {
  const std::size_t stride = 16;
  std::vector<double> src(kSymCount * stride), dst(kSymCount * stride, -1.0);
  Rng rng(5);
  for (double& v : src) v = rng.uniform();
  simd::copy_groups(dst.data(), src.data(), 0b10, stride);  // group 1 only
  for (std::size_t l = 0; l < stride; ++l) {
    for (int s = 0; s < kSymCount; ++s) {
      const std::size_t i = static_cast<std::size_t>(s) * stride + l;
      EXPECT_EQ(dst[i], l >= simd::kLaneWidth ? src[i] : -1.0);
    }
  }
  simd::seed_error_lane(dst.data(), stride, 3);
  const Prob4 seed = Prob4::error_site();
  for (int s = 0; s < kSymCount; ++s) {
    EXPECT_EQ(dst[static_cast<std::size_t>(s) * stride + 3], seed.p[s]);
  }
}

TEST(SimdKernels, RuntimeSwitchRoundTrips) {
  const bool initial = simd::enabled();
  simd::set_enabled(!initial);
  EXPECT_EQ(simd::enabled(), !initial);
  simd::set_enabled(initial);
  EXPECT_EQ(simd::enabled(), initial);
}

}  // namespace
}  // namespace sereep
