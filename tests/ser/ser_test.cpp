#include "src/ser/ser_estimator.hpp"

#include <gtest/gtest.h>

#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"
#include "src/ser/latching.hpp"
#include "src/ser/seu_rate.hpp"

namespace sereep {
namespace {

TEST(SeuRateModel, RatesArePositiveForLogic) {
  const Circuit c = make_s27();
  const SeuRateModel model;
  for (NodeId id = 0; id < c.node_count(); ++id) {
    if (c.type(id) == GateType::kConst0 || c.type(id) == GateType::kConst1) {
      continue;
    }
    EXPECT_GT(model.rate(c, id), 0.0) << c.node(id).name;
  }
}

TEST(SeuRateModel, ConstantsCannotUpset) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId k = c.add_const("k1", true);
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, k});
  c.mark_output(g);
  c.finalize();
  const SeuRateModel model;
  EXPECT_DOUBLE_EQ(model.rate(c, k), 0.0);
}

TEST(SeuRateModel, FlipFlopsAreMostVulnerable) {
  // The defaults must reproduce the paper-cited reality: memory elements
  // upset more than logic of comparable size.
  const Circuit c = make_s27();
  const SeuRateModel model;
  const double ff_rate = model.rate(c, c.dffs()[0]);
  for (NodeId id = 0; id < c.node_count(); ++id) {
    if (is_combinational(c.type(id))) {
      EXPECT_GT(ff_rate, model.rate(c, id)) << c.node(id).name;
    }
  }
}

TEST(SeuRateModel, FluxScalesLinearly) {
  const Circuit c = make_c17();
  SeuRateModel model;
  const double base = model.rate(c, *c.find("10"));
  model.set_flux(model.flux() * 3.0);
  EXPECT_NEAR(model.rate(c, *c.find("10")), base * 3.0, base * 1e-9);
}

TEST(SeuRateModel, HigherQcritLowersRate) {
  const Circuit c = make_c17();
  SeuRateModel model;
  const double base = model.rate(c, *c.find("10"));
  GateSeuParams p = model.params(GateType::kNand);
  p.qcrit_fc *= 2.0;
  model.set_params(GateType::kNand, p);
  EXPECT_LT(model.rate(c, *c.find("10")), base);
}

TEST(LatchingModel, WindowRatioForDff) {
  const Circuit c = make_s27();
  LatchingModel model(/*clock_period_ns=*/2.0, /*window_ns=*/0.1,
                      /*pulse_ns=*/0.3);
  EXPECT_NEAR(model.probability(c, c.dffs()[0]), 0.2, 1e-12);
}

TEST(LatchingModel, ClampedToUnitInterval) {
  const Circuit c = make_s27();
  LatchingModel model(/*clock_period_ns=*/1.0, /*window_ns=*/3.0,
                      /*pulse_ns=*/0.0);
  EXPECT_DOUBLE_EQ(model.probability(c, c.dffs()[0]), 1.0);
}

TEST(LatchingModel, PoObservedEveryCycleByDefault) {
  const Circuit c = make_c17();
  const LatchingModel model;
  EXPECT_DOUBLE_EQ(model.probability(c, *c.find("22")), 1.0);
}

TEST(SerEstimator, ProductStructureHolds) {
  const Circuit c = make_c17();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerOptions opt;
  SerEstimator est(c, sp, opt);
  const NodeSer n = est.estimate_node(*c.find("11"));
  EXPECT_GT(n.r_seu, 0.0);
  EXPECT_GT(n.p_sensitized, 0.0);
  EXPECT_NEAR(n.ser, n.r_seu * n.p_latched * n.p_sensitized, n.ser * 1e-9);
}

TEST(SerEstimator, TotalIsSumOfNodes) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const CircuitSer ser = est.estimate();
  double sum = 0;
  for (const NodeSer& n : ser.nodes) sum += n.ser;
  EXPECT_NEAR(ser.total_ser, sum, sum * 1e-12);
  EXPECT_EQ(ser.nodes.size(), 17u);  // all error sites of s27
}

TEST(SerEstimator, UnobservableNodeContributesZero) {
  // A gate masked by a constant has P_sens = 0 and hence zero SER.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId z = c.add_const("zero", false);
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, z});
  const NodeId out = c.add_gate(GateType::kOr, "out", {g, c.add_input("b")});
  c.mark_output(out);
  c.finalize();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  EXPECT_DOUBLE_EQ(est.estimate_node(a).ser, 0.0);
}

TEST(SerEstimator, RankedIsDescending) {
  const Circuit c = make_iscas89_like("s298");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const auto ranked = est.estimate().ranked();
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].ser, ranked[i].ser);
  }
}

TEST(SerEstimator, FitConversion) {
  NodeSer n;
  n.ser = 1.0 / 3600.0;  // one failure per hour
  EXPECT_NEAR(n.fit(), 1e9, 1.0);
}

TEST(SerEstimator, SubsamplingBoundsNodeCount) {
  const Circuit c = make_iscas89_like("s386");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerOptions opt;
  opt.max_sites = 25;
  SerEstimator est(c, sp, opt);
  EXPECT_EQ(est.estimate().nodes.size(), 25u);
}

TEST(Hardening, ReachesRequestedReduction) {
  const Circuit c = make_iscas89_like("s298");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const CircuitSer ser = est.estimate();
  const HardeningPlan plan = select_hardening(ser, 0.5);
  EXPECT_GE(plan.reduction(), 0.5);
  EXPECT_LT(plan.protect.size(), ser.nodes.size())
      << "greedy selection should not need every node for a 50% cut";
  EXPECT_NEAR(plan.original_ser, ser.total_ser, ser.total_ser * 1e-12);
}

TEST(Hardening, GreedyPicksHighestContributorsFirst) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const CircuitSer ser = est.estimate();
  const HardeningPlan plan = select_hardening(ser, 0.10);
  ASSERT_FALSE(plan.protect.empty());
  EXPECT_EQ(plan.protect[0], ser.ranked()[0].node);
}

TEST(Hardening, ZeroTargetNeedsNoProtection) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const HardeningPlan plan = select_hardening(est.estimate(), 0.0);
  EXPECT_TRUE(plan.protect.empty());
  EXPECT_DOUBLE_EQ(plan.reduction(), 0.0);
}

TEST(Hardening, FullTargetProtectsEverythingContributing) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  SerEstimator est(c, sp, {});
  const CircuitSer ser = est.estimate();
  const HardeningPlan plan = select_hardening(ser, 1.0);
  EXPECT_NEAR(plan.residual_ser, 0.0, ser.total_ser * 1e-9);
}

}  // namespace
}  // namespace sereep
