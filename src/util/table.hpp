// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary prints its results with this formatter so the rows of
// our Table-2 reproduction line up with the paper's layout and EXPERIMENTS.md
// can paste them verbatim.
#pragma once

#include <string>
#include <vector>

namespace sereep {

/// Column alignment for table cells.
enum class Align { kLeft, kRight };

/// Minimal monospace table builder.
///
/// Usage:
///   AsciiTable t({"Circuit", "SysT", "SimT"});
///   t.add_row({"s953", "0.35", "28.3"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header,
                      std::vector<Align> aligns = {});

  /// Appends a data row; the row may be shorter than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at this position.
  void add_separator();

  /// Renders the table with a header rule and outer border.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace sereep
