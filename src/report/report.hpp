// Reliability report generation.
//
// Bundles the full analysis flow (structure → signal probability → EPP →
// SER → hardening recommendation → optional Monte-Carlo validation) into a
// single markdown document — the artifact a reliability sign-off flow would
// attach to a design review.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/netlist/circuit.hpp"

namespace sereep {

class CompiledCircuit;
class Session;
struct SignalProbabilities;

/// Report configuration.
struct ReportOptions {
  std::size_t top_nodes = 20;          ///< ranking rows to include
  double hardening_target = 0.5;       ///< SER reduction target for the plan
  bool validate_with_simulation = false;  ///< add an EPP-vs-MC section
  std::size_t validation_sites = 40;
  std::size_t validation_vectors = 16384;
  /// Use the sequential fixed-point SP instead of flat 0.5 FF probabilities.
  bool sequential_sp = false;
};

/// Renders the markdown report from a Session — one compiled view, one SP
/// pass, one sweep shared with everything else the session already built.
/// ReportOptions::sequential_sp is honoured only through the Session's own
/// Options (set sp.source = SpSource::kSequentialFixedPoint).
[[nodiscard]] std::string generate_report(Session& session,
                                          const ReportOptions& options = {});

/// DEPRECATED shim (prefer the Session overload): builds a one-shot Session
/// internally (mapping options.sequential_sp onto its SP source) and
/// delegates. Note: the Session owns its circuit, so this shim deep-copies
/// `circuit` — per-call O(nodes+edges) the Session overload never pays.
[[nodiscard]] std::string generate_report(const Circuit& circuit,
                                          const ReportOptions& options = {});

/// DEPRECATED shim over the engine registry (sereep/engine.hpp): the
/// registry's string keys are the real selector now; this enum survives for
/// pre-registry callers. All built-in engines are bit-for-bit equal (the
/// oracle hierarchy of tests/README.md), so the choice is observable only
/// in timing.
enum class SweepEngine { kReference, kCompiled, kBatched };

/// Parses "reference" / "compiled" / "batched"; nullopt otherwise. The
/// registry-backed vocabulary (any registered key) is
/// EngineRegistry::instance().contains(); this shim covers the enum only.
[[nodiscard]] std::optional<SweepEngine> parse_sweep_engine(
    std::string_view name);

/// The registry key of a SweepEngine value.
[[nodiscard]] std::string_view sweep_engine_name(SweepEngine engine);

/// All-nodes P_sensitized (indexed by NodeId, non-sites 0) through the
/// selected engine, resolved via the engine registry. `compiled` must be a
/// compilation of `circuit`; `threads` applies to engines with the threads
/// capability only.
[[nodiscard]] std::vector<double> sweep_p_sensitized(
    const Circuit& circuit, const CompiledCircuit& compiled,
    const SignalProbabilities& sp, SweepEngine engine, unsigned threads = 1);

/// Machine-readable all-nodes P_sensitized sweep: CSV with one row per error
/// site in error_sites() order, probabilities printed with round-trip
/// precision (%.17g). DEPRECATED shim over Session::sweep_csv() — it
/// deep-copies `circuit` into a one-shot Session per call. The CLI's
/// `sweep --csv=...` and the golden-file regression tests (tests/cli/) share
/// that one formatter, so any output or numeric drift in the sweep fails
/// ctest instead of silently changing the Table-2 harness. `threads` only
/// parallelizes (batched engine) and `engine` only re-routes — the text is
/// identical for every combination (the golden tests assert all three
/// engines).
[[nodiscard]] std::string sweep_csv(const Circuit& circuit,
                                    unsigned threads = 1,
                                    SweepEngine engine = SweepEngine::kBatched);

}  // namespace sereep
