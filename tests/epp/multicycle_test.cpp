#include "src/epp/multicycle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"

namespace sereep {
namespace {

/// a ->(AND b) -> ff1 -> ff2 -> po_gate. The error must take exactly 3
/// cycles to surface: latch into ff1 (cycle 1), move to ff2 (cycle 2),
/// appear at the PO (cycle 3).
struct PipelineFixture {
  Circuit c;
  NodeId a, b, g, ff1, ff2, po;
  PipelineFixture() {
    a = c.add_input("a");
    b = c.add_input("b");
    g = c.add_gate(GateType::kAnd, "g", {a, b});
    ff1 = c.add_dff_placeholder("ff1");
    c.connect_dff(ff1, g);
    NodeId buf1 = c.add_gate(GateType::kBuf, "buf1", {ff1});
    ff2 = c.add_dff_placeholder("ff2");
    c.connect_dff(ff2, buf1);
    po = c.add_gate(GateType::kBuf, "po", {ff2});
    c.mark_output(po);
    c.finalize();
  }
};

TEST(MultiCycleEpp, PipelineLatencyIsVisible) {
  PipelineFixture f;
  const SignalProbabilities sp = parker_mccluskey_sp(f.c);
  MultiCycleEppEngine engine(f.c, sp, {});

  const MultiCycleEpp r = engine.compute(f.g, 5);
  ASSERT_GE(r.detect_by_cycle.size(), 3u);
  // Cycle 1: error only latched, no PO reachable combinationally.
  EXPECT_NEAR(r.detect_by_cycle[0], 0.0, 1e-12);
  // Cycle 2: error sits in ff1, still not at the PO.
  EXPECT_NEAR(r.detect_by_cycle[1], 0.0, 1e-12);
  // Cycle 3: error reaches the PO through ff2 with certainty (buffers only).
  EXPECT_NEAR(r.detect_by_cycle[2], 1.0, 1e-12);
}

TEST(MultiCycleEpp, CycleOneMatchesSingleCycleEppForPoOnlyCircuit) {
  const Circuit c = make_c17();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine single(c, sp);
  MultiCycleEppEngine multi(c, sp, {});
  for (NodeId site : error_sites(c)) {
    const MultiCycleEpp r = multi.compute(site, 1);
    EXPECT_NEAR(r.detect_by_cycle[0], single.p_sensitized(site), 1e-12)
        << c.node(site).name;
  }
}

TEST(MultiCycleEpp, DetectionIsMonotoneInCycles) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {});
  for (NodeId site : error_sites(c)) {
    const MultiCycleEpp r = engine.compute(site, 12);
    for (std::size_t t = 1; t < r.detect_by_cycle.size(); ++t) {
      EXPECT_GE(r.detect_by_cycle[t] + 1e-12, r.detect_by_cycle[t - 1])
          << c.node(site).name << " cycle " << t;
    }
  }
}

TEST(MultiCycleEpp, ResidualDecaysOnS27) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {});
  const MultiCycleEpp r = engine.compute(c.dffs()[0], 64);
  ASSERT_GE(r.residual_state.size(), 2u);
  // After many cycles the state error must have decayed substantially.
  EXPECT_LT(r.residual_state.back(), r.residual_state.front() + 1e-12);
}

TEST(MultiCycleEpp, MatchesSequentialFaultInjectionOnPipeline) {
  PipelineFixture f;
  const SignalProbabilities sp = parker_mccluskey_sp(f.c);
  MultiCycleEppEngine engine(f.c, sp, {});
  FaultInjector fi(f.c);
  McOptions opt;
  opt.num_vectors = 1 << 14;

  for (std::size_t cycles : {1u, 2u, 3u, 4u}) {
    const double analytic = engine.compute(f.g, cycles).detect_within(cycles);
    const double mc =
        fi.run_site_multicycle(f.g, cycles, opt).probability();
    EXPECT_NEAR(analytic, mc, 0.02) << "cycles=" << cycles;
  }
}

TEST(MultiCycleEpp, CloseToSequentialFaultInjectionOnS27) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {});
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 1 << 14;

  double total_err = 0;
  std::size_t n = 0;
  for (NodeId site : error_sites(c)) {
    const double analytic = engine.compute(site, 6).detect_within(6);
    const double mc = fi.run_site_multicycle(site, 6, opt).probability();
    total_err += std::fabs(analytic - mc);
    ++n;
  }
  // Cross-cycle independence is an approximation; stay within ~15% mean.
  EXPECT_LT(total_err / static_cast<double>(n), 0.15);
}

TEST(MultiCycleEpp, DetectEventuallyBoundsDetectWithin) {
  const Circuit c = make_iscas89_like("s298");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {});
  for (NodeId site : subsample_sites(error_sites(c), 20)) {
    const double ever = engine.detect_eventually(site, 1e-9, 500);
    const double at8 = engine.compute(site, 8).detect_within(8);
    EXPECT_GE(ever + 1e-9, at8) << c.node(site).name;
    EXPECT_LE(ever, 1.0 + 1e-12);
  }
}

TEST(MultiCycleEpp, ZeroCyclesIsZero) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {});
  EXPECT_DOUBLE_EQ(engine.compute(0, 0).detect_within(0), 0.0);
}

TEST(SequentialFaultInjection, MoreCyclesDetectMore) {
  const Circuit c = make_s27();
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 4096;
  const NodeId site = *c.find("G13");
  const double d1 = fi.run_site_multicycle(site, 1, opt).probability();
  const double d8 = fi.run_site_multicycle(site, 8, opt).probability();
  EXPECT_GE(d8 + 0.02, d1);
}

// ---- FF-matrix rebuild: batched/parallel route vs sequential oracle -------
//
// The engine's constructor now builds the FF→{PO, FF} matrix through the
// batched cone-sharing sweep (compute_sites_parallel). These tests rebuild
// the matrix the pre-batching way — one CompiledEppEngine::compute per
// flip-flop, in dffs() order — and demand exact equality (EXPECT_EQ, no
// tolerance) at several thread counts, including the 0-FF and single-FF
// edge cases.

/// The sequential oracle: a verbatim replay of the original per-FF loop.
std::vector<MultiCycleEppEngine::FfRow> sequential_ff_rows(
    const Circuit& circuit, const SignalProbabilities& sp,
    EppOptions options = {}) {
  const CompiledCircuit compiled(circuit);
  CompiledEppEngine engine(compiled, sp, options);
  const auto dffs = circuit.dffs();
  std::vector<std::size_t> ff_index(circuit.node_count(),
                                    static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < dffs.size(); ++k) ff_index[dffs[k]] = k;
  std::vector<MultiCycleEppEngine::FfRow> rows(dffs.size());
  for (std::size_t k = 0; k < dffs.size(); ++k) {
    const SiteEpp epp = engine.compute(dffs[k]);
    MultiCycleEppEngine::FfRow& row = rows[k];
    double po_miss = 1.0;
    for (const SinkEpp& s : epp.sinks) {
      if (s.sink == dffs[k]) {
        if (epp.self_dpin_mass > 0.0) {
          row.to_ff.emplace_back(k, epp.self_dpin_mass);
        }
        continue;
      }
      if (circuit.type(s.sink) == GateType::kDff) {
        row.to_ff.emplace_back(ff_index[s.sink], s.error_mass);
      } else {
        po_miss *= 1.0 - s.error_mass;
      }
    }
    row.to_po = 1.0 - po_miss;
  }
  return rows;
}

void expect_ff_rows_equal(
    const std::vector<MultiCycleEppEngine::FfRow>& expected,
    const std::vector<MultiCycleEppEngine::FfRow>& got) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(got[k].to_po, expected[k].to_po) << "ff " << k;
    ASSERT_EQ(got[k].to_ff.size(), expected[k].to_ff.size()) << "ff " << k;
    for (std::size_t j = 0; j < expected[k].to_ff.size(); ++j) {
      EXPECT_EQ(got[k].to_ff[j].first, expected[k].to_ff[j].first)
          << "ff " << k << " entry " << j;
      EXPECT_EQ(got[k].to_ff[j].second, expected[k].to_ff[j].second)
          << "ff " << k << " entry " << j;
    }
  }
}

TEST(MultiCycleEpp, FfMatrixBatchedRouteMatchesSequentialOnS27) {
  const Circuit c = make_s27();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto expected = sequential_ff_rows(c, sp);
  for (unsigned threads : {1u, 2u, 8u}) {
    MultiCycleEppEngine engine(c, sp, {}, threads);
    expect_ff_rows_equal(expected, engine.ff_rows());
  }
}

TEST(MultiCycleEpp, FfMatrixBatchedRouteMatchesSequentialOnGeneratedProfile) {
  GeneratorProfile p;
  p.name = "mc_seq_gen";
  p.num_inputs = 16;
  p.num_outputs = 8;
  p.num_dffs = 120;
  p.num_gates = 900;
  p.target_depth = 12;
  const Circuit c = generate_circuit(p, 4242);
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto expected = sequential_ff_rows(c, sp);
  MultiCycleEppEngine engine(c, sp, {}, 4);
  expect_ff_rows_equal(expected, engine.ff_rows());
}

TEST(MultiCycleEpp, FfMatrixZeroFfCircuitIsEmptyAndEngineStillWorks) {
  const Circuit c = make_c17();  // purely combinational
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  MultiCycleEppEngine engine(c, sp, {}, 2);
  EXPECT_TRUE(engine.ff_rows().empty());
  // With no state, detection is decided entirely in cycle 1 and nothing
  // lingers.
  const CompiledCircuit cc(c);
  CompiledEppEngine single(cc, sp);
  for (NodeId site : error_sites(c)) {
    const MultiCycleEpp r = engine.compute(site, 4);
    ASSERT_GE(r.detect_by_cycle.size(), 1u);
    EXPECT_EQ(r.detect_by_cycle[0], single.compute(site).p_sensitized);
    for (std::size_t t = 0; t < r.detect_by_cycle.size(); ++t) {
      EXPECT_EQ(r.detect_by_cycle[t], r.detect_by_cycle[0]);  // no state left
      EXPECT_EQ(r.residual_state[t], 0.0);
    }
  }
}

TEST(MultiCycleEpp, FfMatrixSingleFfWithFeedback) {
  // One flip-flop holding AND(in, ff): a genuine self-feedback loop plus a
  // PO tap — the smallest circuit where the self-entry of the matrix is
  // nonzero.
  Circuit c;
  const NodeId in = c.add_input("in");
  const NodeId ff = c.add_dff_placeholder("ff");
  const NodeId g = c.add_gate(GateType::kAnd, "g", {in, ff});
  c.connect_dff(ff, g);
  const NodeId po = c.add_gate(GateType::kBuf, "po", {g});
  c.mark_output(po);
  c.finalize();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto expected = sequential_ff_rows(c, sp);
  ASSERT_EQ(expected.size(), 1u);
  ASSERT_EQ(expected[0].to_ff.size(), 1u);  // the self-feedback entry
  EXPECT_GT(expected[0].to_ff[0].second, 0.0);
  EXPECT_GT(expected[0].to_po, 0.0);
  for (unsigned threads : {1u, 3u}) {
    MultiCycleEppEngine engine(c, sp, {}, threads);
    expect_ff_rows_equal(expected, engine.ff_rows());
  }
}

}  // namespace
}  // namespace sereep
