// sereep::Session — the facade's artifact-caching contract, option
// validation/invalidation semantics, and value equivalence against the
// pre-facade construction paths.
//
// The caching contract (see tests/README.md): every shared artifact
// (CompiledCircuit, SignalProbabilities, ConeClusterPlanner, engine) is
// built AT MOST ONCE per (Session, Options), across any sequence of
// queries — pinned here through Session::build_counts().
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>

#include "sereep/sereep.hpp"
#include "src/artifact/compiled_artifact.hpp"
#include "src/epp/multicycle.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"
#include "src/ser/ser_estimator.hpp"
#include "src/sim/fault_injection.hpp"

namespace sereep {
namespace {

TEST(Session, ConstructionBuildsNoArtifacts) {
  Session session(make_s27());
  const Session::BuildCounts& counts = session.build_counts();
  EXPECT_EQ(counts.compiled, 0u);
  EXPECT_EQ(counts.sp, 0u);
  EXPECT_EQ(counts.planner, 0u);
  EXPECT_EQ(counts.engine, 0u);
  EXPECT_EQ(counts.ser, 0u);
  EXPECT_EQ(counts.multicycle, 0u);
}

TEST(Session, ArtifactsBuiltAtMostOnceAcrossSweepSerHarden) {
  // The acceptance contract: sweep() + ser() + harden() on one session share
  // ONE compiled view, ONE SP pass and ONE cluster plan.
  Session session(make_s27());
  (void)session.sweep();
  (void)session.ser();
  (void)session.harden(0.5);
  (void)session.sweep_p_sensitized();
  (void)session.epp(session.sites().front());
  const Session::BuildCounts& counts = session.build_counts();
  EXPECT_EQ(counts.compiled, 1u);
  EXPECT_EQ(counts.sp, 1u);
  EXPECT_EQ(counts.planner, 1u);
  EXPECT_EQ(counts.engine, 1u);
  EXPECT_EQ(counts.ser, 1u);  // harden() reused the memoized CircuitSer
}

TEST(Session, PerSiteQueriesNeverBuildThePlan) {
  // The cluster plan feeds sweeps only — a batched-engine session doing
  // per-site work must not pay the O(V+E) planning pass.
  Session session(make_s27());  // default engine: batched
  (void)session.epp(session.sites().front());
  (void)session.p_sensitized(session.sites().back());
  EXPECT_EQ(session.build_counts().planner, 0u);
  (void)session.sweep();  // first sweep resolves the deferred plan...
  EXPECT_EQ(session.build_counts().planner, 1u);
  (void)session.sweep();  // ...and keeps it
  EXPECT_EQ(session.build_counts().planner, 1u);
}

TEST(Session, SequentialSpSourceExposesDiagnostics) {
  Options options;
  options.sp.source = SpSource::kSequentialFixedPoint;
  Session session(make_s27(), std::move(options));
  EXPECT_FALSE(session.sp_diagnostics().has_value());  // not built yet
  (void)session.sp();
  ASSERT_TRUE(session.sp_diagnostics().has_value());
  EXPECT_TRUE(session.sp_diagnostics()->converged);
  EXPECT_GT(session.sp_diagnostics()->iterations, 0u);

  Session pm(make_s27());
  (void)pm.sp();
  EXPECT_FALSE(pm.sp_diagnostics().has_value());  // other sources: none
}

TEST(Session, SequentialEnginesSkipThePlanner) {
  // The cluster plan feeds batched sweeps only; a reference-engine session
  // must not pay for one.
  Options options;
  options.engine = "reference";
  Session session(make_s27(), std::move(options));
  (void)session.sweep();
  (void)session.ser();
  EXPECT_EQ(session.build_counts().planner, 0u);
  EXPECT_EQ(session.build_counts().compiled, 1u);
}

TEST(Session, MulticycleReusesSessionArtifacts) {
  Session session(make_s27());
  (void)session.sweep();
  const NodeId dff = session.circuit().dffs().front();
  (void)session.multicycle(dff, 4);
  (void)session.multicycle(dff, 8);  // second query: engine memoized
  const Session::BuildCounts& counts = session.build_counts();
  EXPECT_EQ(counts.compiled, 1u);
  EXPECT_EQ(counts.sp, 1u);
  EXPECT_EQ(counts.multicycle, 1u);
}

TEST(Session, UnknownEngineThrowsListingRegisteredKeys) {
  Options options;
  options.engine = "turbo";
  try {
    Session session(make_c17(), std::move(options));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("turbo"), std::string::npos);
    EXPECT_NE(what.find("registered:"), std::string::npos);
    EXPECT_NE(what.find("batched"), std::string::npos);
    EXPECT_NE(what.find("compiled"), std::string::npos);
    EXPECT_NE(what.find("reference"), std::string::npos);
  }
}

TEST(Session, InvalidLayerValuesThrow) {
  Options bad_survival;
  bad_survival.epp.electrical_survival = 1.5;
  EXPECT_THROW(Session(make_c17(), std::move(bad_survival)),
               std::invalid_argument);
  Options bad_sp;
  bad_sp.sp.probabilities.input_sp = -0.1;
  EXPECT_THROW(Session(make_c17(), std::move(bad_sp)), std::invalid_argument);
  Options bad_mc;
  bad_mc.sp.source = SpSource::kMonteCarlo;
  bad_mc.sp.monte_carlo_vectors = 0;
  EXPECT_THROW(Session(make_c17(), std::move(bad_mc)), std::invalid_argument);
}

TEST(Session, SetOptionsInvalidatesSelectively) {
  Session session(make_s27());
  (void)session.sweep();
  ASSERT_EQ(session.build_counts().sp, 1u);
  ASSERT_EQ(session.build_counts().engine, 1u);

  // Engine change: new engine, same compiled view and SPs.
  Options next = session.options();
  next.engine = "compiled";
  session.set_options(std::move(next));
  (void)session.sweep();
  EXPECT_EQ(session.build_counts().engine, 2u);
  EXPECT_EQ(session.build_counts().sp, 1u);
  EXPECT_EQ(session.build_counts().compiled, 1u);

  // SP-layer change: SPs rebuilt (and the engine, which binds them).
  next = session.options();
  next.sp.probabilities.input_sp = 0.25;
  session.set_options(std::move(next));
  (void)session.sweep();
  EXPECT_EQ(session.build_counts().sp, 2u);
  EXPECT_EQ(session.build_counts().engine, 3u);
  EXPECT_EQ(session.build_counts().compiled, 1u);  // never invalidated
}

TEST(Session, SweepMatchesEverySelectedEngineExactly) {
  // The facade is a pure re-route: per-site values are EXPECT_EQ-identical
  // across engine selections (the oracle-hierarchy contract surfaced at the
  // API layer).
  const Circuit circuit = make_iscas89_like("s298");
  Session reference(Circuit(circuit), [] {
    Options o;
    o.engine = "reference";
    return o;
  }());
  const std::vector<double> expected = reference.sweep_p_sensitized();
  for (const char* key : {"compiled", "batched"}) {
    Options options;
    options.engine = key;
    Session session(Circuit(circuit), std::move(options));
    const std::vector<double> got = session.sweep_p_sensitized();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << key << " node " << i;
    }
  }
}

TEST(Session, SerMatchesSerEstimatorExactly) {
  // Session::ser() folds engine sweep records through the same
  // node_ser_from_epp as SerEstimator — totals and every per-node field are
  // bit-identical to the pre-facade path.
  const Circuit circuit = make_s27();
  Session session{Circuit(circuit)};
  const CircuitSer& via_session = session.ser();

  SerEstimator estimator(circuit, SerOptions{});
  const CircuitSer direct = estimator.estimate();

  EXPECT_EQ(via_session.total_ser, direct.total_ser);
  ASSERT_EQ(via_session.nodes.size(), direct.nodes.size());
  for (std::size_t i = 0; i < direct.nodes.size(); ++i) {
    EXPECT_EQ(via_session.nodes[i].node, direct.nodes[i].node);
    EXPECT_EQ(via_session.nodes[i].r_seu, direct.nodes[i].r_seu);
    EXPECT_EQ(via_session.nodes[i].p_latched, direct.nodes[i].p_latched);
    EXPECT_EQ(via_session.nodes[i].p_sensitized,
              direct.nodes[i].p_sensitized);
    EXPECT_EQ(via_session.nodes[i].ser, direct.nodes[i].ser);
  }
}

TEST(Session, HardenMatchesSelectHardening) {
  Session session(make_s27());
  const HardeningPlan via_session = session.harden(0.5);
  const HardeningPlan direct = select_hardening(session.ser(), 0.5);
  EXPECT_EQ(via_session.protect, direct.protect);
  EXPECT_EQ(via_session.residual_ser, direct.residual_ser);
}

TEST(Session, MulticycleMatchesDirectEngineExactly) {
  const Circuit circuit = make_s27();
  Session session{Circuit(circuit)};
  MultiCycleEppEngine direct(circuit);  // owning shim ctor
  for (NodeId site : error_sites(circuit)) {
    const MultiCycleEpp a = session.multicycle(site, 6);
    const MultiCycleEpp b = direct.compute(site, 6);
    ASSERT_EQ(a.detect_by_cycle.size(), b.detect_by_cycle.size()) << site;
    for (std::size_t t = 0; t < a.detect_by_cycle.size(); ++t) {
      EXPECT_EQ(a.detect_by_cycle[t], b.detect_by_cycle[t]);
      EXPECT_EQ(a.residual_state[t], b.residual_state[t]);
    }
  }
}

TEST(Session, MovedSessionKeepsServingQueries) {
  // Artifacts live behind stable pointers; engines built before a move must
  // stay valid after it.
  Session source(make_s27());
  const std::vector<double> before = source.sweep_p_sensitized();
  Session moved(std::move(source));
  const std::vector<double> after = moved.sweep_p_sensitized();
  EXPECT_EQ(before, after);
  EXPECT_EQ(moved.build_counts().engine, 1u);  // no rebuild after the move
}

TEST(Session, DeferredPlanResolvesAfterAMove) {
  // An engine created before the move holds a deferred handle on the plan;
  // resolving it for the first time afterwards must hit the moved-to
  // session's cache (stable heap address), not freed memory.
  Session source(make_s27());
  const double direct = source.p_sensitized(source.sites().front());
  ASSERT_EQ(source.build_counts().planner, 0u);
  Session moved(std::move(source));
  const std::vector<SiteEpp> swept = moved.sweep();
  EXPECT_EQ(moved.build_counts().planner, 1u);
  EXPECT_EQ(swept.front().p_sensitized, direct);
}

TEST(Session, OpenResolvesEmbeddedNames) {
  Session session = Session::open("c17");
  EXPECT_EQ(session.circuit().name(), "c17");
  EXPECT_TRUE(session.find("22").has_value());
  EXPECT_FALSE(session.find("no-such-node").has_value());
}

TEST(Session, SubsampledSerRespectsMaxSites) {
  Options options;
  options.ser.max_sites = 5;
  Session session(make_iscas89_like("s298"), std::move(options));
  EXPECT_EQ(session.ser().nodes.size(), 5u);
  EXPECT_GT(session.sites().size(), 5u);  // the sweep surface is unaffected
}

// ---- the incremental what-if loop (apply_edit) ----------------------------

TEST(Session, RetypeEditPatchesCompiledInPlace) {
  // A retype-only batch preserves the CSR layout, so the compiled artifact
  // must be patched, not re-flattened: the "at most once" BuildCounts
  // contract extends through retype edits unchanged.
  Session session(make_c17());
  const std::size_t total_sites = session.sites().size();
  (void)session.sweep();
  EXPECT_EQ(session.build_counts().compiled, 1u);

  session.apply_edit(parse_edit_spec("retype 10 AND"));
  (void)session.sweep();
  EXPECT_EQ(session.build_counts().compiled, 1u);  // patched in place
  const Session::IncrementalStats& inc = session.incremental_stats();
  EXPECT_EQ(inc.edits, 1u);
  EXPECT_EQ(inc.compiled_patched, 1u);
  EXPECT_EQ(inc.sp_incremental, 1u);
  EXPECT_EQ(inc.spliced_sweeps, 1u);
  // Every site is either re-swept or spliced — never silently dropped.
  EXPECT_EQ(inc.resweeped_sites + inc.spliced_sites, total_sites);
  EXPECT_GT(inc.spliced_sites, 0u);  // c17's fanin cone of '10' is a strict
                                     // subset, so something must splice
}

TEST(Session, StructuralEditReflattensCompiled) {
  Session session(make_c17());
  (void)session.sweep();
  EXPECT_EQ(session.build_counts().compiled, 1u);
  session.apply_edit(parse_edit_spec("tmr 16"));
  (void)session.sweep();
  // Node count grew: the CSR cannot be patched, one re-flatten is correct.
  EXPECT_EQ(session.build_counts().compiled, 2u);
  EXPECT_EQ(session.incremental_stats().compiled_patched, 0u);
  EXPECT_EQ(session.incremental_stats().sp_incremental, 1u);
}

TEST(Session, ArtifactSessionGoesInMemoryOnFirstEdit) {
  // A Session opened from a .sca artifact serves the ARTIFACT's circuit;
  // after an edit that identity is stale. The fingerprint and the sharded
  // netlist spec must drop on the first edit so a sharded sweep cannot
  // pre-dispatch the on-disk netlist to workers that would then compute
  // the un-edited circuit (the fingerprint handshake refuses instead).
  const std::string path = ::testing::TempDir() + "sereep_edit_session_" +
                           std::to_string(::getpid()) + ".sca";
  write_artifact(path, make_c17());
  Session session = Session::open(path);
  ASSERT_TRUE(session.artifact_fingerprint().has_value());
  ASSERT_EQ(session.options().shard.netlist, path);

  session.apply_edit(parse_edit_spec("retype 10 AND"));
  EXPECT_FALSE(session.artifact_fingerprint().has_value());
  EXPECT_TRUE(session.options().shard.netlist.empty());
  // And the session keeps answering — fully in-memory now.
  EXPECT_EQ(session.sweep().size(), session.sites().size());
  std::remove(path.c_str());
}

TEST(Session, FailedEditPlanKeepsSessionConsistent) {
  // apply_edit_plan applies eagerly: ops before the failing one stick. The
  // session must drop every cached artifact wholesale and keep serving
  // results equal to a from-scratch session over the partially-edited
  // circuit.
  Session session(make_c17());
  (void)session.sweep();
  EXPECT_THROW(session.apply_edit(
                   parse_edit_spec("retype 10 AND; tmr no_such_node")),
               std::runtime_error);
  // The retype stuck; the unknown-node op did not.
  EXPECT_EQ(session.circuit().type(*session.find("10")), GateType::kAnd);

  Circuit c = make_c17();
  (void)apply_edit_plan(c, parse_edit_spec("retype 10 AND"));
  Session oracle(std::move(c));
  EXPECT_EQ(session.sweep_p_sensitized(), oracle.sweep_p_sensitized());
}

TEST(Session, EditInvalidatesPerSiteAndMulticycleQueries) {
  Session session(make_s27());
  const NodeId site = session.sites().front();
  const double before = session.p_sensitized(site);
  const MultiCycleEpp mc_before = session.multicycle(site, 3);
  // s27's G11 is a 2-input NOR; flip it to NAND.
  session.apply_edit(parse_edit_spec("retype G11 NAND"));
  // Same-session queries now reflect the edited circuit exactly.
  Circuit c = make_s27();
  (void)apply_edit_plan(c, parse_edit_spec("retype G11 NAND"));
  Session oracle(std::move(c));
  EXPECT_EQ(session.p_sensitized(site), oracle.p_sensitized(site));
  const MultiCycleEpp mc_after = session.multicycle(site, 3);
  const MultiCycleEpp mc_oracle = oracle.multicycle(site, 3);
  EXPECT_EQ(mc_after.detect_by_cycle, mc_oracle.detect_by_cycle);
  EXPECT_EQ(mc_after.residual_state, mc_oracle.residual_state);
  (void)before;
  (void)mc_before;
}

}  // namespace
}  // namespace sereep
