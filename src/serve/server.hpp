// `sereep serve` — a long-lived analysis daemon holding hot Sessions.
//
// A Session's expensive artifacts (compiled view, SP table, cluster plan,
// engine) are memoized per netlist; the CLI rebuilds them from scratch on
// every invocation. The serve daemon amortizes that: it keeps an LRU-bounded
// cache of open Sessions keyed by netlist spec and answers sweep / SER /
// harden / per-site / stats requests over the shard wire framing
// (src/serve/serve_protocol.hpp), so repeated queries against the same
// design pay the build cost once. Responses are the raw bytes of the same
// renderings the in-process Session produces — byte-identical by
// construction, pinned by the loopback differential tests (tests/serve/).
//
// Concurrency model: a BOUNDED pool — `serve_threads` fixed worker threads
// draining a queue of accepted connections capped at `max_connections`.
// A worker owns one connection end to end (a connection is a sequence of
// requests); when every worker is busy, accepted connections wait in the
// queue, and once the queue is full the accept loop answers a kBusy frame
// and closes instead of admitting — overload sheds load at the door, it
// never grows an unbounded thread count toward fd/thread exhaustion (the
// failure mode of the PR 7 detached-thread-per-connection model). Capacity
// planning: `serve_threads` bounds concurrent compute, `max_connections`
// bounds queued backlog, `max_sessions` bounds resident Sessions — memory
// is O(sessions), concurrency is O(threads), and everything past
// threads + queue is told to retry (`sereep client --retries` backs off and
// does exactly that).
//
// The cache mutex is held only for lookup / insert / evict; each cached
// Session has its OWN mutex held for the duration of one computation, so
// two clients querying DIFFERENT netlists compute concurrently while two
// querying the same netlist serialize (a Session is not internally
// thread-safe). Session construction happens OUTSIDE the cache lock (it can
// take seconds on a big design), with a re-check on insert so a racing
// builder adopts the winner instead of double-caching.
//
// Graceful drain: SIGTERM/SIGINT flips the daemon into draining mode — the
// listener closes immediately (new connects are refused by the kernel),
// queued-but-unserved connections get a best-effort kBusy and are closed,
// and in-flight requests are given up to `drain_timeout_ms` to finish;
// whatever is still open past the deadline is forcibly shut down. Workers
// are then joined and run_serve returns 0 — a drained daemon is a clean
// exit, not a kill. A second signal during drain is idempotent.
//
// Accept-loop robustness: EINTR retries silently; EMFILE/ENFILE/ENOBUFS/
// ENOMEM (fd or buffer exhaustion — somebody else's leak, or honest
// overload) back off with a doubling sleep instead of spinning accept() at
// 100% CPU, and the sleep stays signal-interruptible so drain latency is
// unaffected; ECONNABORTED (peer gave up while queued in the kernel) is
// routine and skipped.
//
// Metrics: one ServeMetrics registry (src/serve/metrics.hpp) counts
// connections, per-kind requests, errors, cache hits/misses/evictions and a
// request-latency histogram — served to clients via the kStats request,
// printed to stderr every `stats_interval_ms` when non-zero, and dumped
// once on drain.
//
// Failure handling mirrors the supervisor's loud-error discipline:
//   - framing-level garbage (bad magic/version, implausible length, CRC
//     mismatch, truncated frame, non-kRequest type, malformed request
//     payload) -> best-effort kError naming the cause, then CLOSE the
//     connection — the stream can no longer be trusted;
//   - semantic errors (unloadable netlist, unknown node, invalid target)
//     -> kError naming the cause, connection STAYS OPEN for more requests;
//   - a connection idle past request_timeout_ms is closed (bounded-resource
//     rule — the protocol-fuzz suite hammers all of these).
//
// SECURITY: the protocol is unauthenticated and the netlist field names
// paths the SERVER will open. Bind to loopback (the default) or run only on
// trusted networks. See README.md "Distributed & server mode".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sereep {

/// `sereep serve` configuration (the --port/--bind/--sessions/--threads/
/// --serve-threads/--max-connections/--request-timeout-ms/--drain-timeout-ms/
/// --stats-interval-ms flags).
struct ServeConfig {
  /// validate() bounds, mirroring Options::validate(): reject out-of-range
  /// values loudly, never clamp silently.
  static constexpr std::size_t kMaxSessions = 1024;
  static constexpr unsigned kMaxServeThreads = 256;
  static constexpr std::size_t kMaxConnections = 65'536;
  static constexpr unsigned kMaxTimeoutMs = 86'400'000;  ///< 24 h

  std::string bind = "127.0.0.1";  ///< loopback by default — see SECURITY
  std::uint16_t port = 0;          ///< 0 = kernel-chosen ephemeral
  /// LRU capacity of the Session cache: the N most recently requested
  /// netlists stay hot; the N+1st request evicts the coldest. [1, 1024].
  std::size_t max_sessions = 8;
  unsigned threads = 1;  ///< Options::threads for every cached Session
  /// Connection-pool worker threads: the bound on CONCURRENT computation.
  /// Each worker owns one connection at a time. [1, 256].
  unsigned serve_threads = 4;
  /// Accept-queue cap: accepted connections waiting for a worker. One more
  /// arriving while the queue is full is answered kBusy and closed —
  /// clients retry with backoff. [1, 65536].
  std::size_t max_connections = 64;
  /// Per-connection inter-byte read deadline AND idle cap, milliseconds.
  /// 0 disables (a debugger-friendly foot-gun; the CLI default is 10 s).
  unsigned request_timeout_ms = 10'000;
  /// Drain deadline: how long SIGTERM/SIGINT waits for in-flight requests
  /// (and connections idle between requests) before forcibly shutting their
  /// sockets down. 0 means shut down immediately after the listener closes.
  unsigned drain_timeout_ms = 5'000;
  /// Period of the stderr metrics snapshot; 0 (default) disables it. The
  /// kStats request works either way.
  unsigned stats_interval_ms = 0;

  /// Throws std::invalid_argument naming the defective field and its valid
  /// range. run_serve() calls this first; the CLI also pre-checks each flag
  /// so the diagnostic names the flag, not the struct field.
  void validate() const;
};

/// Binds `config.bind:config.port`, prints
/// "sereep serve listening on HOST:PORT\n" to stdout (the line tests and
/// scripts parse for the ephemeral port), then serves until SIGTERM/SIGINT
/// starts a graceful drain. Returns 0 after a clean drain (all workers
/// joined), non-zero on a fatal setup or accept-loop error (logged to
/// stderr).
int run_serve(const ServeConfig& config);

}  // namespace sereep
