// sereep public API — the EPP engine strategy interface and its registry.
//
// The three engine tiers (reference / compiled / batched — the oracle
// hierarchy of tests/README.md) share one arithmetic contract but three
// construction signatures; before this interface every consumer hard-wired
// one of them through #includes. IEppEngine erases that difference behind a
// uniform per-site + sweep surface, and EngineRegistry makes the selection
// DATA: a string key resolved at runtime, so the CLI's --engine flag, the
// benches' A/B loops and the equivalence fuzz all pick engines the same way,
// and new engines (a future sharded or GPU tier) join by registering a
// factory — no call-site edits.
//
// Bit-for-bit contract: every registered built-in produces results exactly
// equal (EXPECT_EQ on doubles, no tolerance) to direct construction of the
// underlying engine; tests/api/engine_registry_test.cpp pins this.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sereep/options.hpp"
#include "src/epp/epp_engine.hpp"
#include "src/netlist/circuit.hpp"
#include "src/netlist/compiled.hpp"
#include "src/netlist/cone_cluster.hpp"
#include "src/sigprob/signal_prob.hpp"

namespace sereep {

/// Everything an engine factory may bind to. All pointers outlive the
/// created engine (the Session owns them; direct users must guarantee the
/// same). The cluster plan feeds batched sweeps only and can arrive two
/// ways: `planner` (already built), or `planner_source` (a callable the
/// engine invokes ON FIRST SWEEP — a session's per-site-only workloads
/// never pay the O(V+E) planning pass). Both null/empty: sweep-capable
/// engines build a private plan per sweep call.
struct EngineContext {
  const Circuit* circuit = nullptr;          ///< required
  const CompiledCircuit* compiled = nullptr; ///< required
  const SignalProbabilities* sp = nullptr;   ///< required
  const ConeClusterPlanner* planner = nullptr;  ///< optional (batched sweeps)
  std::function<const ConeClusterPlanner*()> planner_source;  ///< lazy form
  EppOptions epp;                            ///< EPP-layer options
  ShardOptions shard;                        ///< sharded-engine layer
};

/// Static capability flags, declared at registration time so callers can
/// pick engines by property ("fastest multi-threaded engine") instead of by
/// name, and so help text / errors can describe what a key buys.
struct EngineCaps {
  /// Sweeps honour a thread count (engines without it run sequentially).
  bool threads = false;
  /// Uses the lane-plane SIMD kernels (subject to the runtime switch).
  bool simd = false;
  /// Sweeps fan out across worker PROCESSES (the sharded tier) — needs a
  /// worker binary + a loadable netlist spec (ShardOptions).
  bool processes = false;
};

/// Uniform EPP engine surface: per-site queries plus explicit-site-list
/// sweeps. One instance per thread of external parallelism (engines own
/// per-site scratch); sweep() manages its own internal parallelism where the
/// capability allows.
class IEppEngine {
 public:
  virtual ~IEppEngine() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual EngineCaps caps() const noexcept = 0;

  /// Full three-step computation for one error site.
  [[nodiscard]] virtual SiteEpp compute(NodeId site) = 0;

  /// P_sensitized only — the fastest per-site path.
  [[nodiscard]] virtual double p_sensitized(NodeId site) = 0;

  /// Full SiteEpp records for an explicit site list; out[i] for sites[i].
  /// `threads` follows the Options convention (1 sequential, 0 = hardware
  /// concurrency); ignored without the `threads` capability.
  [[nodiscard]] virtual std::vector<SiteEpp> sweep(
      std::span<const NodeId> sites, unsigned threads) = 0;

  /// P_sensitized for an explicit site list; out[i] for sites[i].
  [[nodiscard]] virtual std::vector<double> sweep_p_sensitized(
      std::span<const NodeId> sites, unsigned threads) = 0;
};

/// String-keyed engine registry. The built-ins ("reference", "compiled",
/// "batched") self-register when the library is linked; anything else can be
/// added at runtime through add() (e.g. an experimental tier in a bench, a
/// remote backend in a service build). Keys are unique; lookups are
/// case-sensitive. Not thread-safe for concurrent mutation — register
/// engines at startup, resolve freely afterwards.
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<IEppEngine>(
      const EngineContext&)>;

  /// The process-wide registry (built-ins pre-registered).
  [[nodiscard]] static EngineRegistry& instance();

  /// Registers a new engine; returns false (and changes nothing) if the key
  /// is already taken.
  bool add(std::string name, EngineCaps caps, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered keys, sorted — the vocabulary error messages and --help
  /// print.
  [[nodiscard]] std::vector<std::string> names() const;

  /// One "a, b, c" line of names(), for error messages.
  [[nodiscard]] std::string names_joined() const;

  /// Capability flags of a registered engine (throws std::invalid_argument
  /// listing the registered keys when unknown).
  [[nodiscard]] EngineCaps caps(std::string_view name) const;

  /// Creates an engine. `context.circuit/compiled/sp` must be set and
  /// outlive the result. Throws std::invalid_argument listing the
  /// registered keys when the name is unknown.
  [[nodiscard]] std::unique_ptr<IEppEngine> create(
      std::string_view name, const EngineContext& context) const;

 private:
  struct Entry {
    std::string name;
    EngineCaps caps;
    Factory factory;
  };
  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;  ///< registration order; names() sorts
};

}  // namespace sereep
