// A1 ablation: polarity tracking (the paper's a/ā split) vs the pooled
// polarity-blind rule, measured against a Monte-Carlo reference.
//
// The polarity split is the paper's key device for reconvergent error paths
// ("Since we have considered the polarity of error propagation, this will
// take care of reconvergent fanouts"). The ablation quantifies how much
// accuracy it buys as reconvergence density grows.
//
// Flags: --vectors=N (default 16384)  --sites=K (default 60)
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "sereep/sereep.hpp"
#include "src/netlist/generator.hpp"
#include "src/netlist/topo.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace sereep;
  bench::Flags flags(argc, argv);
  const auto vectors = static_cast<std::size_t>(flags.get_int("vectors", 16384));
  const auto max_sites = static_cast<std::size_t>(flags.get_int("sites", 60));

  std::printf("Ablation A1 — polarity-aware EPP vs pooled (no a/abar split)\n\n");
  AsciiTable table({"ReuseBias", "ReconvStems", "MeanErr% exact",
                    "MeanErr% pooled", "Pooled/Exact"});

  for (double bias : {0.05, 0.2, 0.4, 0.6, 0.8}) {
    GeneratorProfile p;
    p.name = "reconv";
    p.num_inputs = 12;
    p.num_outputs = 8;
    p.num_dffs = 6;
    p.num_gates = 400;
    p.target_depth = 14;
    p.reuse_bias = bias;
    // Two sessions over the same circuit, differing only in the EPP layer
    // (the ablation knob is an Options field like everything else).
    Options exact_opt;
    exact_opt.engine = "reference";
    Options pooled_opt = exact_opt;
    pooled_opt.epp.track_polarity = false;
    Session exact(generate_circuit(p, 99), std::move(exact_opt));
    Session pooled(Circuit(exact.circuit()), std::move(pooled_opt));
    const Circuit& c = exact.circuit();
    FaultInjector fi(c);
    McOptions mc;
    mc.num_vectors = vectors;

    double err_exact = 0, err_pooled = 0;
    std::size_t n = 0;
    for (NodeId site : subsample_sites(error_sites(c), max_sites)) {
      const double ref = fi.run_site(site, mc).probability();
      err_exact += std::fabs(exact.p_sensitized(site) - ref);
      err_pooled += std::fabs(pooled.p_sensitized(site) - ref);
      ++n;
    }
    err_exact = 100 * err_exact / static_cast<double>(n);
    err_pooled = 100 * err_pooled / static_cast<double>(n);
    table.add_row({format_fixed(bias, 2),
                   std::to_string(count_reconvergent_stems(c)),
                   format_fixed(err_exact, 2), format_fixed(err_pooled, 2),
                   format_fixed(err_pooled / (err_exact > 0 ? err_exact : 1), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: the pooled rule degrades as reconvergence\n"
              "density rises; polarity tracking stays flat.\n");
  return 0;
}
