// A4 ablation: EPP vs COP observability vs Monte-Carlo truth.
//
// COP-style observability is the classical one-pass estimate the EPP method
// competes with on cost: COP computes ALL nodes in one backward pass, EPP
// needs one cone pass per node. This ablation shows what that cost buys —
// COP scores each error path independently and is structurally blind to
// reconvergent cancellation/reinforcement, so its error grows with
// reconvergence density while EPP's stays bounded.
//
// Flags: --vectors=N (default 16384)  --sites=K (default 80)
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "sereep/sereep.hpp"
#include "src/epp/cop.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sereep;
  bench::Flags flags(argc, argv);
  const auto vectors = static_cast<std::size_t>(flags.get_int("vectors", 16384));
  const auto max_sites = static_cast<std::size_t>(flags.get_int("sites", 80));

  std::printf("Ablation A4 — EPP vs COP observability (MC = truth)\n\n");
  AsciiTable table({"Circuit", "EPP err%", "COP err%", "COP/EPP", "EPP all(ms)",
                    "COP all(ms)"});

  for (const char* name :
       {"c17", "s27", "s208", "s298", "s344", "s386", "s526", "s953"}) {
    // Session with the reference engine (the tier COP competes with on
    // model fidelity); COP reads the session's SP assignment directly.
    Options opt;
    opt.engine = "reference";
    Session session = Session::open(name, std::move(opt));
    const Circuit& c = session.circuit();
    const SignalProbabilities& sp = session.sp();

    Stopwatch cop_clock;
    const auto obs = cop_observability(c, sp);
    const double cop_ms = cop_clock.millis();

    Stopwatch epp_clock;
    const std::vector<double> epp = session.sweep_p_sensitized();
    const double epp_ms = epp_clock.millis();
    const std::vector<NodeId> sites(session.sites().begin(),
                                    session.sites().end());

    FaultInjector fi(c);
    McOptions mc;
    mc.num_vectors = vectors;
    double err_epp = 0, err_cop = 0;
    std::size_t n = 0;
    for (NodeId site : subsample_sites(sites, max_sites)) {
      const double truth = fi.run_site(site, mc).probability();
      err_epp += std::fabs(epp[site] - truth);
      err_cop += std::fabs(obs[site] - truth);
      ++n;
    }
    err_epp = 100 * err_epp / static_cast<double>(n);
    err_cop = 100 * err_cop / static_cast<double>(n);
    table.add_row({name, format_fixed(err_epp, 2), format_fixed(err_cop, 2),
                   format_fixed(err_cop / (err_epp > 0 ? err_epp : 1), 2),
                   format_fixed(epp_ms, 3), format_fixed(cop_ms, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading the shape: COP is 1-2 orders cheaper (one pass for all\n"
      "nodes). On combinational reconvergence EPP is the more faithful\n"
      "model (it tracks polarity; COP structurally cannot — see the\n"
      "cancellation tests). On sequential circuits COP can come out ahead:\n"
      "the paper's sink-union formula 1-prod(1-EPP_j) treats correlated\n"
      "sinks as independent and overestimates when one stem feeds several\n"
      "observation points, while COP's stem-union saturates at the most\n"
      "observable branch. SiteEpp::p_sens_lower/upper expose the rigorous\n"
      "bracket for callers that need it.\n");
  return 0;
}
