#include "src/util/table.hpp"

#include <algorithm>
#include <sstream>

namespace sereep {

AsciiTable::AsciiTable(std::vector<std::string> header,
                       std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  aligns_.resize(header_.size(), Align::kRight);
  if (!header_.empty()) aligns_[0] = Align::kLeft;  // row label column
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t width,
                       Align align) {
    std::string out;
    const std::size_t fill = width > text.size() ? width - text.size() : 0;
    if (align == Align::kRight) out.append(fill, ' ');
    out += text;
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::ostringstream os;
  os << rule();
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << ' ' << pad(header_[c], widths[c], Align::kLeft) << " |";
  }
  os << "\n" << rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      os << rule();
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ' << pad(row.cells[c], widths[c], aligns_[c]) << " |";
    }
    os << "\n";
  }
  os << rule();
  return os.str();
}

}  // namespace sereep
