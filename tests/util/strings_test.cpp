#include "src/util/strings.hpp"

#include <gtest/gtest.h>

namespace sereep {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Trim, EmptyAndAllSpace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, SingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitWs, DropsEmptyRuns) {
  const auto fields = split_ws("  a \t b\n c ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWs, EmptyInput) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("NAND", "nand"));
  EXPECT_TRUE(iequals("DfF", "dFf"));
  EXPECT_FALSE(iequals("NAND", "NOR"));
  EXPECT_FALSE(iequals("NAND", "NAN"));
}

TEST(IStartsWith, Basics) {
  EXPECT_TRUE(istarts_with("INPUT(G0)", "input"));
  EXPECT_FALSE(istarts_with("IN", "INPUT"));
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(0.5, 0), "0");  // rounds-to-even allowed either way
  EXPECT_EQ(format_fixed(-1.25, 1), "-1.2");
}

TEST(FormatSi, Magnitudes) {
  EXPECT_EQ(format_si(950.0), "950");
  EXPECT_EQ(format_si(12300.0), "12.3k");
  EXPECT_EQ(format_si(2.5e6), "2.5M");
  EXPECT_EQ(format_si(3.0e9), "3.0G");
}

TEST(ToUpper, Ascii) { EXPECT_EQ(to_upper("nand2_x1"), "NAND2_X1"); }

}  // namespace
}  // namespace sereep
