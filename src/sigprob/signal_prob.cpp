#include "src/sigprob/signal_prob.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/netlist/compiled.hpp"
#include "src/netlist/topo.hpp"
#include "src/sim/simulator.hpp"

namespace sereep {

namespace {

/// SP of one gate output from fanin SPs, independence assumed.
double gate_sp(GateType type, const std::vector<double>& fanin_sp) {
  switch (type) {
    case GateType::kConst0:
      return 0.0;
    case GateType::kConst1:
      return 1.0;
    case GateType::kBuf:
    case GateType::kDff:
      return fanin_sp[0];
    case GateType::kNot:
      return 1.0 - fanin_sp[0];
    case GateType::kAnd:
    case GateType::kNand: {
      double p = 1.0;
      for (double s : fanin_sp) p *= s;
      return type == GateType::kNand ? 1.0 - p : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double q = 1.0;
      for (double s : fanin_sp) q *= 1.0 - s;
      return type == GateType::kNor ? q : 1.0 - q;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // P(odd parity) folded pairwise: p <- p(1-s) + s(1-p).
      double p = 0.0;
      for (double s : fanin_sp) p = p * (1.0 - s) + s * (1.0 - p);
      return type == GateType::kXnor ? 1.0 - p : p;
    }
    case GateType::kInput:
      break;
  }
  assert(false && "gate_sp: sources handled by caller");
  return 0.5;
}

SignalProbabilities pm_pass(const Circuit& circuit,
                            const std::vector<double>& input_sp,
                            const std::vector<double>& dff_sp) {
  assert(circuit.finalized());
  SignalProbabilities out;
  out.p1.assign(circuit.node_count(),
                std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    out.p1[circuit.inputs()[i]] = input_sp[i];
  }
  for (std::size_t k = 0; k < circuit.dffs().size(); ++k) {
    out.p1[circuit.dffs()[k]] = dff_sp[k];
  }
  std::vector<double> fanin_sp;
  for (NodeId id : circuit.topo_order()) {
    const Node& node = circuit.node(id);
    if (node.type == GateType::kInput || node.type == GateType::kDff) continue;
    if (node.type == GateType::kConst0) { out.p1[id] = 0.0; continue; }
    if (node.type == GateType::kConst1) { out.p1[id] = 1.0; continue; }
    fanin_sp.clear();
    for (NodeId f : node.fanin) fanin_sp.push_back(out.p1[f]);
    out.p1[id] = gate_sp(node.type, fanin_sp);
  }
  return out;
}

/// One combinational gate of the compiled pass: the flat fanin fold with the
/// exact per-gate arithmetic of gate_sp(), fanins in CSR order. Shared
/// between the full pass and the incremental repair so both produce the
/// same bits by construction.
double compiled_gate_sp(const CompiledCircuit& circuit, NodeId id,
                        const double* p1) {
  const auto fanin = circuit.fanin(id);
  switch (circuit.type(id)) {
    case GateType::kBuf:
      return p1[fanin[0]];
    case GateType::kNot:
      return 1.0 - p1[fanin[0]];
    case GateType::kAnd:
    case GateType::kNand: {
      double p = 1.0;
      for (NodeId f : fanin) p *= p1[f];
      return circuit.type(id) == GateType::kNand ? 1.0 - p : p;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double q = 1.0;
      for (NodeId f : fanin) q *= 1.0 - p1[f];
      return circuit.type(id) == GateType::kNor ? q : 1.0 - q;
    }
    default: {  // kXor / kXnor: P(odd parity) folded pairwise
      double p = 0.0;
      for (NodeId f : fanin) {
        const double s = p1[f];
        p = p * (1.0 - s) + s * (1.0 - p);
      }
      return circuit.type(id) == GateType::kXnor ? 1.0 - p : p;
    }
  }
}

}  // namespace

SignalProbabilities parker_mccluskey_sp(const Circuit& circuit,
                                        const SpOptions& options) {
  return pm_pass(circuit,
                 std::vector<double>(circuit.inputs().size(), options.input_sp),
                 std::vector<double>(circuit.dffs().size(), options.dff_sp));
}

SignalProbabilities parker_mccluskey_sp_custom(const Circuit& circuit,
                                               std::vector<double> input_sp,
                                               std::vector<double> dff_sp) {
  if (input_sp.size() != circuit.inputs().size() ||
      dff_sp.size() != circuit.dffs().size()) {
    throw std::runtime_error("parker_mccluskey_sp_custom: size mismatch");
  }
  return pm_pass(circuit, input_sp, dff_sp);
}

SignalProbabilities compiled_parker_mccluskey_sp(const CompiledCircuit& circuit,
                                                 const SpOptions& options) {
  const std::size_t n = circuit.node_count();
  SignalProbabilities out;
  out.p1.assign(n, std::numeric_limits<double>::quiet_NaN());

  // Sources first (a gate may read a DFF output from any bucket), then one
  // counting sort by bucket level gives a valid evaluation order for the
  // combinational gates: a gate sits strictly above its non-DFF fanins.
  std::vector<std::uint32_t> bucket_start(circuit.bucket_count() + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    switch (circuit.type(id)) {
      case GateType::kInput:  out.p1[id] = options.input_sp; continue;
      case GateType::kDff:    out.p1[id] = options.dff_sp; continue;
      case GateType::kConst0: out.p1[id] = 0.0; continue;
      case GateType::kConst1: out.p1[id] = 1.0; continue;
      default:
        ++bucket_start[circuit.bucket_level(id) + 1];
    }
  }
  for (std::size_t b = 1; b < bucket_start.size(); ++b) {
    bucket_start[b] += bucket_start[b - 1];
  }
  std::vector<NodeId> order(bucket_start.back());
  {
    std::vector<std::uint32_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (NodeId id = 0; id < n; ++id) {
      if (!is_combinational(circuit.type(id))) continue;
      order[cursor[circuit.bucket_level(id)]++] = id;
    }
  }

  // Flat fanin walk (compiled_gate_sp above), fanins folded in CSR order
  // (= the source circuit's fanin order).
  double* p1 = out.p1.data();
  for (NodeId id : order) p1[id] = compiled_gate_sp(circuit, id, p1);
  return out;
}

std::vector<NodeId> incremental_parker_mccluskey_sp(
    const CompiledCircuit& circuit, const SpOptions& options,
    std::span<const NodeId> seeds, SignalProbabilities& sp) {
  const std::size_t n = circuit.node_count();
  // Appended nodes (insert_gate / TMR) extend the table; NaN bits guarantee
  // their first recompute registers as a change.
  if (sp.p1.size() < n) {
    sp.p1.resize(n, std::numeric_limits<double>::quiet_NaN());
  }
  if (sp.p1.size() != n) {
    throw std::runtime_error(
        "incremental_parker_mccluskey_sp: SP table larger than the circuit");
  }

  // Bucket-ordered worklist: a gate sits strictly above its non-DFF fanins,
  // so draining pending nodes in ascending bucket order sees every fanin's
  // FINAL value — each node is evaluated at most once. Consumers enqueue
  // only on a bitwise change (the early exit); DFF/source consumers never
  // enqueue (their SP is an options constant, not a function of fanins).
  std::vector<std::vector<NodeId>> buckets(circuit.bucket_count() + 1);
  std::vector<std::uint8_t> pending(n, 0);
  const auto enqueue = [&](NodeId id) {
    if (pending[id] != 0) return;
    pending[id] = 1;
    const std::uint32_t b =
        is_combinational(circuit.type(id)) ? circuit.bucket_level(id) : 0;
    buckets[b].push_back(id);
  };
  for (NodeId id : seeds) enqueue(id);

  std::vector<NodeId> changed;
  double* p1 = sp.p1.data();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    for (std::size_t i = 0; i < buckets[b].size(); ++i) {
      const NodeId id = buckets[b][i];
      double v;
      switch (circuit.type(id)) {
        case GateType::kInput:  v = options.input_sp; break;
        case GateType::kDff:    v = options.dff_sp; break;
        case GateType::kConst0: v = 0.0; break;
        case GateType::kConst1: v = 1.0; break;
        default:                v = compiled_gate_sp(circuit, id, p1); break;
      }
      if (std::bit_cast<std::uint64_t>(v) ==
          std::bit_cast<std::uint64_t>(p1[id])) {
        continue;  // identical bits — downstream cannot move
      }
      p1[id] = v;
      changed.push_back(id);
      for (NodeId consumer : circuit.fanout(id)) {
        if (is_combinational(circuit.type(consumer))) enqueue(consumer);
      }
    }
  }
  std::sort(changed.begin(), changed.end());
  return changed;
}

SignalProbabilities exact_sp(const Circuit& circuit,
                             const ExactSpOptions& options) {
  assert(circuit.finalized());
  SignalProbabilities out;
  out.p1.assign(circuit.node_count(),
                std::numeric_limits<double>::quiet_NaN());

  // Evaluate each node over its support by exhaustive weighted enumeration.
  // The cone is re-evaluated with a tiny local interpreter; values for
  // support nodes come from the current assignment bits.
  std::vector<std::uint8_t> value(circuit.node_count(), 0);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const GateType t = circuit.type(id);
    if (t == GateType::kInput) {
      out.p1[id] = options.base.input_sp;
      continue;
    }
    if (t == GateType::kDff) {
      out.p1[id] = options.base.dff_sp;
      continue;
    }
    if (t == GateType::kConst0) { out.p1[id] = 0.0; continue; }
    if (t == GateType::kConst1) { out.p1[id] = 1.0; continue; }

    const std::vector<NodeId> cone = fanin_cone(circuit, id);
    std::vector<NodeId> sup;
    for (NodeId m : cone) {
      const GateType mt = circuit.type(m);
      if (mt == GateType::kInput || (mt == GateType::kDff && m != id)) {
        sup.push_back(m);
      }
    }
    if (sup.size() > options.max_support) continue;  // stays NaN

    double p1 = 0.0;
    const std::uint64_t combos = 1ULL << sup.size();
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
      double weight = 1.0;
      for (std::size_t k = 0; k < sup.size(); ++k) {
        const bool bit = (mask >> k) & 1;
        const double sp = circuit.type(sup[k]) == GateType::kInput
                              ? options.base.input_sp
                              : options.base.dff_sp;
        weight *= bit ? sp : 1.0 - sp;
        value[sup[k]] = bit;
      }
      if (weight == 0.0) continue;
      bool result = false;
      for (NodeId m : cone) {
        const GateType mt = circuit.type(m);
        if (mt == GateType::kInput || (mt == GateType::kDff && m != id)) {
          continue;  // assignment bit already in `value`
        }
        if (mt == GateType::kConst0) { value[m] = 0; continue; }
        if (mt == GateType::kConst1) { value[m] = 1; continue; }
        bool acc;
        const auto fi = circuit.fanin(m);
        switch (mt) {
          case GateType::kBuf: acc = value[fi[0]]; break;
          case GateType::kNot: acc = !value[fi[0]]; break;
          case GateType::kAnd:
          case GateType::kNand: {
            acc = true;
            for (NodeId f : fi) acc = acc && value[f];
            if (mt == GateType::kNand) acc = !acc;
            break;
          }
          case GateType::kOr:
          case GateType::kNor: {
            acc = false;
            for (NodeId f : fi) acc = acc || value[f];
            if (mt == GateType::kNor) acc = !acc;
            break;
          }
          case GateType::kXor:
          case GateType::kXnor: {
            acc = false;
            for (NodeId f : fi) acc = acc != (value[f] != 0);
            if (mt == GateType::kXnor) acc = !acc;
            break;
          }
          default:
            acc = false;
            break;
        }
        value[m] = acc ? 1 : 0;
        if (m == id) result = acc;
      }
      if (result) p1 += weight;
    }
    out.p1[id] = p1;
  }
  return out;
}

SignalProbabilities monte_carlo_sp(const Circuit& circuit,
                                   std::size_t num_vectors,
                                   std::uint64_t seed) {
  assert(circuit.finalized());
  BitParallelSimulator sim(circuit);
  Rng rng(seed);
  std::vector<std::uint64_t> ones(circuit.node_count(), 0);
  const std::size_t batches = (num_vectors + 63) / 64;
  for (std::size_t b = 0; b < batches; ++b) {
    sim.randomize_sources(rng);
    sim.eval();
    for (NodeId id = 0; id < circuit.node_count(); ++id) {
      ones[id] += std::popcount(sim.values()[id]);
    }
  }
  SignalProbabilities out;
  out.p1.resize(circuit.node_count());
  const double denom = static_cast<double>(batches * 64);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    out.p1[id] = static_cast<double>(ones[id]) / denom;
  }
  return out;
}

SequentialSpResult sequential_fixed_point_sp(const Circuit& circuit,
                                             const SpOptions& options,
                                             double tolerance,
                                             std::size_t max_iterations) {
  SequentialSpResult result;
  std::vector<double> dff_sp(circuit.dffs().size(), options.dff_sp);
  const std::vector<double> input_sp(circuit.inputs().size(),
                                     options.input_sp);
  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    result.sp = pm_pass(circuit, input_sp, dff_sp);
    result.residual = 0.0;
    for (std::size_t k = 0; k < circuit.dffs().size(); ++k) {
      const NodeId d = circuit.fanin(circuit.dffs()[k])[0];
      const double next = result.sp.p1[d];
      result.residual = std::max(result.residual, std::fabs(next - dff_sp[k]));
      dff_sp[k] = next;
    }
    if (result.residual <= tolerance) {
      result.converged = true;
      break;
    }
  }
  // Final pass so FF-output SPs reflect the converged state distribution.
  result.sp = pm_pass(circuit, input_sp, dff_sp);
  return result;
}

}  // namespace sereep
