#include "sereep/options.hpp"

#include <stdexcept>
#include <string>

#include "sereep/engine.hpp"
#include "src/util/net.hpp"

namespace sereep {

namespace {

void check_probability(double value, const char* what) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1], got " +
                                std::to_string(value));
  }
}

}  // namespace

void Options::validate() const {
  if (!EngineRegistry::instance().contains(engine)) {
    throw std::invalid_argument(
        "unknown engine '" + engine + "' (registered: " +
        EngineRegistry::instance().names_joined() + ")");
  }
  check_probability(sp.probabilities.input_sp, "sp.probabilities.input_sp");
  check_probability(sp.probabilities.dff_sp, "sp.probabilities.dff_sp");
  if (sp.source == SpSource::kMonteCarlo && sp.monte_carlo_vectors == 0) {
    throw std::invalid_argument(
        "sp.monte_carlo_vectors must be > 0 for the Monte-Carlo SP source");
  }
  check_probability(epp.electrical_survival, "epp.electrical_survival");
  // Reject, never clamp: an absurd thread count is a caller bug (the classic
  // one being -1 wrapped through a cast to unsigned), and silently running
  // with a different value would hide it.
  if (threads > kMaxThreads) {
    throw std::invalid_argument(
        "threads must be <= " + std::to_string(kMaxThreads) + ", got " +
        std::to_string(threads) +
        " (a negative flag cast to unsigned wraps here)");
  }
  if (shard.shards == 0 || shard.shards > kMaxShards) {
    throw std::invalid_argument(
        "shard.shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(shard.shards));
  }
  if (shard.retry.retries > kMaxShardRetries) {
    throw std::invalid_argument(
        "shard.retry.retries must be <= " + std::to_string(kMaxShardRetries) +
        ", got " + std::to_string(shard.retry.retries));
  }
  if (shard.retry.timeout_ms > kMaxShardTimeoutMs) {
    throw std::invalid_argument(
        "shard.retry.timeout_ms must be <= " +
        std::to_string(kMaxShardTimeoutMs) + " (milliseconds, not seconds), "
        "got " + std::to_string(shard.retry.timeout_ms));
  }
  if (shard.retry.backoff_base_ms > kMaxShardBackoffMs ||
      shard.retry.backoff_max_ms > kMaxShardBackoffMs) {
    throw std::invalid_argument(
        "shard.retry backoff must be <= " +
        std::to_string(kMaxShardBackoffMs) + " ms, got base " +
        std::to_string(shard.retry.backoff_base_ms) + " / max " +
        std::to_string(shard.retry.backoff_max_ms));
  }
  // Same cap as shards: each host is one more connect target per dispatch
  // round, and a million-entry list is a typo, not a cluster.
  if (shard.hosts.size() > kMaxShards) {
    throw std::invalid_argument(
        "shard.hosts must name at most " + std::to_string(kMaxShards) +
        " workers, got " + std::to_string(shard.hosts.size()));
  }
  for (const std::string& host : shard.hosts) {
    try {
      (void)parse_host_port(host);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("shard.hosts: ") + e.what());
    }
  }
}

}  // namespace sereep
