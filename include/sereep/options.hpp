// sereep public API — layered run configuration.
//
// One Options value configures a whole Session: engine selection (a registry
// key, see sereep/engine.hpp), parallelism, the SIMD runtime switch, the
// signal-probability source and every model knob the analysis layers expose.
// The struct replaces the scattered per-subsystem option plumbing (SpOptions
// here, EppOptions there, SerOptions somewhere else) with ONE value that
// validates as a unit — invalid combinations fail at Session construction
// with an actionable message, not deep inside a sweep.
//
// Layering: each nested field is the subsystem's own option struct, so the
// facade adds no second vocabulary — anything expressible against the
// internal headers is expressible here, and defaults stay in one place (the
// subsystem that owns them).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/epp/epp_engine.hpp"
#include "src/netlist/cone_cluster.hpp"
#include "src/ser/latching.hpp"
#include "src/ser/seu_rate.hpp"
#include "src/sigprob/signal_prob.hpp"

namespace sereep {

/// Where a Session's signal probabilities come from.
enum class SpSource {
  /// Parker-McCluskey single topological pass over the compiled CSR view —
  /// the paper's SPT step and the production default.
  kParkerMcCluskey,
  /// Fixed-point iteration of the combinational pass, feeding FF D-pin SPs
  /// back to FF outputs until the state distribution converges.
  kSequentialFixedPoint,
  /// Bit-parallel Monte-Carlo sampling (sp.monte_carlo_vectors vectors).
  kMonteCarlo,
};

/// Signal-probability layer configuration.
struct SpLayerOptions {
  SpSource source = SpSource::kParkerMcCluskey;
  /// Source probabilities (inputs / FF outputs) for the analytic passes.
  SpOptions probabilities;
  /// Sample count when source == kMonteCarlo.
  std::size_t monte_carlo_vectors = 65536;
};

/// Cluster-planning layer configuration (the batched engine's sweep plan).
struct ClusterOptions {
  /// kTwoLevel (default) regroups Bloom-pass singletons by their
  /// immediate-dominator sink; kBloomOnly is kept for A/B stats.
  ConeClusterPlanner::PlanLevel level =
      ConeClusterPlanner::PlanLevel::kTwoLevel;
};

/// SER layer configuration.
struct SerLayerOptions {
  SeuRateModel seu;        ///< raw upset-rate model
  LatchingModel latching;  ///< latching-window model per sink
  /// Evenly-spaced site subsample for ser()/harden() (0 = all sites).
  std::size_t max_sites = 0;
};

/// What the shard supervisor does when a worker FAILS mid-sweep (dies, hangs
/// past the deadline, or corrupts its stream).
enum class OnShardFailure {
  /// Abort the whole sweep with an exception naming the shard (the default —
  /// PR 5's contract: no silent partial sweep, ever).
  kFail,
  /// Re-plan the shard's unreceived residual and re-dispatch it onto a
  /// respawned worker, up to `ShardRetryOptions::retries` times per shard
  /// (with bounded exponential backoff); exhaustion aborts like kFail.
  /// Results stay bit-for-bit identical — per-site values are pure functions
  /// of (circuit, SP, EPP options), so a recomputed residual merges exactly.
  kRetry,
  /// Like kRetry, but budget exhaustion sweeps the residual IN-PROCESS with
  /// the batched engine instead of aborting — the sweep always completes
  /// (bit-identically), at in-process speed for the degraded remainder.
  kDegrade,
};

/// Fault-tolerance layer of the sharded engine (the --shard-retries /
/// --shard-timeout-ms / --on-shard-failure CLI flags).
struct ShardRetryOptions {
  /// Re-dispatch budget PER SHARD when `on_failure` != kFail. 0 means a
  /// first failure immediately hits the exhaustion policy. Bounded by
  /// Options::kMaxShardRetries in validate().
  unsigned retries = 2;

  /// Progress deadline in milliseconds: a worker that produces NO bytes for
  /// this long is killed and treated as failed (a hung worker must not hang
  /// the sweep). 0 — the default — disables the deadline. The clock resets
  /// on every received byte, and workers send progress frames between
  /// compute slices, so set this comfortably above the worst netlist-load /
  /// single-slice-compute gap, not above the whole sweep.
  unsigned timeout_ms = 0;

  /// Failure policy; see OnShardFailure. kFail preserves the loud-abort
  /// contract; kRetry/kDegrade make long sweeps survive worker loss.
  OnShardFailure on_failure = OnShardFailure::kFail;

  /// Bounded exponential backoff before respawning a failed shard's worker:
  /// attempt k sleeps min(backoff_base_ms << (k-1), backoff_max_ms). Base 0
  /// disables the sleep (tests and benches).
  unsigned backoff_base_ms = 25;
  unsigned backoff_max_ms = 2000;
};

/// Sharded-engine layer configuration (the "sharded" registry key): sweeps
/// fan out to `shards` worker PROCESSES, each a `sereep worker` instance
/// that loads `netlist`, computes its assigned sites with the batched
/// engine, and streams results back over a pipe — or, when `hosts` is set,
/// over TCP to remote `sereep worker --listen` processes
/// (src/epp/shard_protocol.hpp documents the frame format,
/// src/epp/shard_transport.hpp the two transports). Results are bit-for-bit
/// identical to the in-process batched engine — the shard planner only
/// partitions work.
struct ShardOptions {
  /// Worker process count for sharded sweeps. 1 runs in-process (the
  /// batched path with no fork). Bounded by kMaxShards in validate().
  unsigned shards = 2;

  /// Path to the worker binary (the `sereep` CLI). The CLI fills this with
  /// its own executable path; library users must point it at a built
  /// `sereep`. Empty = sharding unavailable (see fallback_to_in_process).
  std::string worker_path;

  /// Netlist spec the workers load — a .bench/.v path or an embedded name,
  /// exactly the vocabulary of load_netlist(). Session::open() records its
  /// spec here automatically; sessions built from an in-memory Circuit have
  /// no spec, so sharding is unavailable for them unless one is supplied.
  std::string netlist;

  /// Remote TCP workers, each a "host:port" naming a running `sereep worker
  /// --listen=PORT` process. Non-empty switches the sharded engine's
  /// transport from locally-forked pipe workers to TCP: dispatch ordinal k
  /// (the initial fan-out and every retry respawn count up one sequence)
  /// connects to hosts[k % hosts.size()], so retries rotate across hosts
  /// and one dead host cannot absorb a shard's whole retry budget. The
  /// workers load their OWN --netlist (cross-checked every dispatch by the
  /// fingerprint handshake), so `worker_path`/`netlist` are not required
  /// here. The protocol is unauthenticated — trusted networks only.
  /// Validated by Options::validate(): each entry must parse as host:port
  /// with a port in 1..65535, at most kMaxShards entries.
  std::vector<std::string> hosts;

  /// Policy when sharding is UNAVAILABLE (empty worker_path/netlist): true
  /// silently serves the sweep from the in-process batched path (results
  /// are identical anyway); false — the default — fails loudly, because an
  /// explicitly requested sharded run that quietly runs single-process
  /// would mask a broken deployment. Worker DEATH is governed by
  /// `retry.on_failure`, never by this flag: under the default kFail policy
  /// it is a hard error — partial sweeps must not masquerade as complete
  /// ones — and under kRetry/kDegrade the supervisor recomputes the lost
  /// residual rather than ever serving partial data.
  bool fallback_to_in_process = false;

  /// Fault tolerance: retry budget, progress deadline, failure policy.
  ShardRetryOptions retry;
};

/// One Session's full configuration.
struct Options {
  /// Upper bound validate() enforces on `threads`. Well past any plausible
  /// machine; catches the negative-flag wraparound class of bug (e.g. a
  /// -1 cast to unsigned is ~4.3e9) without clamping silently.
  static constexpr unsigned kMaxThreads = 1024;

  /// Upper bound validate() enforces on `shard.shards` — one worker process
  /// per shard, so this is a fork bomb guard, not a tuning knob.
  static constexpr unsigned kMaxShards = 256;

  /// Upper bound validate() enforces on `shard.retry.retries`: each retry
  /// respawns a process and recomputes a residual, so a huge budget is a
  /// misconfiguration (a shard failing 16 times is dead, not unlucky).
  static constexpr unsigned kMaxShardRetries = 16;

  /// Upper bound validate() enforces on `shard.retry.timeout_ms` (24 h) and
  /// the backoff knobs (10 min) — catches unit confusion (seconds vs ms).
  static constexpr unsigned kMaxShardTimeoutMs = 86'400'000;
  static constexpr unsigned kMaxShardBackoffMs = 600'000;

  /// EPP engine, by registry key ("reference" | "compiled" | "batched", plus
  /// anything registered at runtime — see EngineRegistry). All built-in
  /// engines are bit-for-bit equal; the choice is observable only in timing.
  std::string engine = "batched";

  /// Worker threads for sweeps (1 = sequential, 0 = hardware concurrency).
  /// Results are bit-identical at any thread count. Engines without the
  /// `threads` capability run sequentially regardless.
  unsigned threads = 1;

  /// Lane-plane SIMD kernels in the batched engine: nullopt (default)
  /// leaves the process-wide runtime switch alone (so the SEREEP_NO_SIMD
  /// build/environment default stands); a value maps onto the switch
  /// (simd::set_enabled) at query time. Both paths are bit-identical — the
  /// knob exists for A/B timing.
  std::optional<bool> simd;

  SpLayerOptions sp;    ///< signal-probability layer
  EppOptions epp;       ///< EPP layer (polarity, electrical masking)
  ClusterOptions cluster;  ///< batched-sweep planning layer
  SerLayerOptions ser;  ///< SER layer (rate + latching models)
  ShardOptions shard;   ///< sharded-engine layer (worker processes)

  /// Validates every layer; throws std::invalid_argument with an actionable
  /// message (unknown engine errors list the registered keys). Session
  /// constructors and set_options() call this — a constructed Session is
  /// always backed by a valid Options value.
  void validate() const;
};

}  // namespace sereep
