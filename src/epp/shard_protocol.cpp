#include "src/epp/shard_protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/util/crc32.hpp"

namespace sereep {

namespace {

/// Little-endian byte serializer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(v); }
  void u32(std::uint32_t v) { raw(v); }
  void u64(std::uint64_t v) { raw(v); }
  /// IEEE bit pattern — the double that crosses the pipe IS the double.
  void f64(double v) { raw(std::bit_cast<std::uint64_t>(v)); }

 private:
  template <typename T>
  void raw(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian reader; throws on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return raw<std::uint16_t>(); }
  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  double f64() { return std::bit_cast<double>(raw<std::uint64_t>()); }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw std::runtime_error("shard protocol: trailing payload bytes");
    }
  }

  /// Validates an untrusted element count against the bytes actually left
  /// (`min_size` per element) BEFORE the caller sizes a vector by it — a
  /// corrupted count must be a protocol error, never a multi-GB allocation.
  [[nodiscard]] std::uint64_t count(std::uint64_t value,
                                    std::size_t min_size) const {
    if (value > (data_.size() - pos_) / min_size) {
      throw std::runtime_error(
          "shard protocol: element count exceeds payload size");
    }
    return value;
  }

 private:
  template <typename T>
  T raw() {
    const std::span<const std::uint8_t> b = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(b[i]) << (8 * i));
    }
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw std::runtime_error("shard protocol: truncated payload");
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard protocol: pipe write: ") +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Blocks until `fd` is readable (or hung up) or `timeout_ms` elapses with
/// no byte available; expiry throws ShardTimeoutError. timeout_ms <= 0
/// returns immediately (unbounded reads).
void wait_readable(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct pollfd pfd = {.fd = fd, .events = POLLIN, .revents = 0};
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard protocol: poll: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw ShardTimeoutError(
          "shard protocol: no bytes for " + std::to_string(timeout_ms) +
          " ms — peer stopped making progress (deadline expired)");
    }
    return;  // readable or POLLHUP; either way read() will not block
  }
}

/// Reads exactly `size` bytes. Returns false on EOF before the first byte;
/// throws on EOF mid-buffer, a read error, or — when `timeout_ms` > 0 — a
/// ShardTimeoutError once no byte arrives within the deadline (the clock
/// restarts on every byte, so this bounds silence, not total transfer time).
bool read_all(int fd, std::uint8_t* data, std::size_t size,
              int timeout_ms = 0) {
  std::size_t got = 0;
  while (got < size) {
    wait_readable(fd, timeout_ms);
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("shard protocol: pipe read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("shard protocol: unexpected EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t shard_crc32(std::span<const std::uint8_t> data) {
  return crc32(data);  // the repo-wide CRC-32 (src/util/crc32.hpp)
}

std::vector<std::uint8_t> encode_job_prefix(const ShardJob& job) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + job.sp.size() * 8);
  ByteWriter w(out);
  w.u8(job.epp.track_polarity ? 1 : 0);
  w.f64(job.epp.electrical_survival);
  w.u32(job.threads);
  w.u8(job.simd_mode);
  w.u8(job.p_only ? 1 : 0);
  w.u64(job.fingerprint.nodes);
  w.u64(job.fingerprint.digest);
  w.u64(job.sp.size());
  for (double p : job.sp) w.f64(p);
  return out;
}

void append_job_dispatch(std::vector<std::uint8_t>& payload,
                         std::uint32_t spawn, std::span<const NodeId> sites) {
  payload.reserve(payload.size() + 12 + sites.size() * 4);
  ByteWriter w(payload);
  w.u32(spawn);
  w.u64(sites.size());
  for (NodeId site : sites) w.u32(site);
}

std::vector<std::uint8_t> encode_job(const ShardJob& job) {
  std::vector<std::uint8_t> out = encode_job_prefix(job);
  append_job_dispatch(out, job.spawn, job.sites);
  return out;
}

ShardJob decode_job(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ShardJob job;
  job.epp.track_polarity = r.u8() != 0;
  job.epp.electrical_survival = r.f64();
  job.threads = r.u32();
  job.simd_mode = r.u8();
  job.p_only = r.u8() != 0;
  job.fingerprint.nodes = r.u64();
  job.fingerprint.digest = r.u64();
  job.sp.resize(r.count(r.u64(), 8));
  for (double& p : job.sp) p = r.f64();
  job.spawn = r.u32();
  job.sites.resize(r.count(r.u64(), 4));
  for (NodeId& site : job.sites) site = r.u32();
  r.expect_end();
  return job;
}

std::vector<std::uint8_t> encode_results(std::span<const SiteEpp> records) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const SiteEpp& rec : records) {
    w.u32(rec.site);
    w.f64(rec.p_sensitized);
    w.f64(rec.p_sens_lower);
    w.f64(rec.p_sens_upper);
    w.f64(rec.self_dpin_mass);
    w.u64(rec.cone_size);
    w.u64(rec.reconvergent_gates);
    w.u32(static_cast<std::uint32_t>(rec.sinks.size()));
    for (const SinkEpp& sink : rec.sinks) {
      w.u32(sink.sink);
      w.f64(sink.error_mass);
      for (int s = 0; s < 4; ++s) w.f64(sink.distribution.p[s]);
    }
  }
  return out;
}

std::vector<SiteEpp> decode_results(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  // 56 bytes = one record with no sinks — the minimum wire footprint.
  std::vector<SiteEpp> records(r.count(r.u32(), 56));
  for (SiteEpp& rec : records) {
    rec.site = r.u32();
    rec.p_sensitized = r.f64();
    rec.p_sens_lower = r.f64();
    rec.p_sens_upper = r.f64();
    rec.self_dpin_mass = r.f64();
    rec.cone_size = r.u64();
    rec.reconvergent_gates = r.u64();
    rec.sinks.resize(r.count(r.u32(), 44));  // 44 bytes per sink entry
    for (SinkEpp& sink : rec.sinks) {
      sink.sink = r.u32();
      sink.error_mass = r.f64();
      for (int s = 0; s < 4; ++s) sink.distribution.p[s] = r.f64();
    }
  }
  r.expect_end();
  return records;
}

std::vector<std::uint8_t> encode_done(std::uint64_t total) {
  std::vector<std::uint8_t> out;
  ByteWriter(out).u64(total);
  return out;
}

std::uint64_t decode_done(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t total = r.u64();
  r.expect_end();
  return total;
}

std::vector<std::uint8_t> encode_hello(const NetlistFingerprint& fp) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u64(fp.nodes);
  w.u64(fp.digest);
  return out;
}

NetlistFingerprint decode_hello(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  NetlistFingerprint fp;
  fp.nodes = r.u64();
  fp.digest = r.u64();
  r.expect_end();
  return fp;
}

std::vector<std::uint8_t> encode_progress(std::uint64_t count) {
  return encode_done(count);  // same u64 shape, distinct frame type
}

std::uint64_t decode_progress(std::span<const std::uint8_t> payload) {
  return decode_done(payload);
}

void write_shard_frame(int fd, ShardFrameType type,
                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> header;
  header.reserve(20);
  ByteWriter w(header);
  w.u32(kShardMagic);
  w.u16(kShardProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(payload.size());
  w.u32(shard_crc32(payload));
  write_all(fd, header.data(), header.size());
  write_all(fd, payload.data(), payload.size());
}

std::optional<ShardFrame> read_shard_frame(int fd, int timeout_ms,
                                           std::uint64_t max_payload) {
  std::uint8_t header[20];
  if (!read_all(fd, header, sizeof header, timeout_ms)) return std::nullopt;
  ByteReader r({header, sizeof header});
  if (r.u32() != kShardMagic) {
    throw std::runtime_error(
        "shard protocol: bad frame magic (not a sereep frame stream?)");
  }
  if (const std::uint16_t version = r.u16();
      version < kMinShardProtocolVersion || version > kShardProtocolVersion) {
    // v4 only ADDED frame types over v3, so a one-version-older peer still
    // frames identically and stays accepted; anything outside the window is
    // a mismatched binary.
    throw std::runtime_error(
        "shard protocol: version mismatch (peer speaks v" +
        std::to_string(version) + ", this side accepts v" +
        std::to_string(kMinShardProtocolVersion) + "..v" +
        std::to_string(kShardProtocolVersion) + ")");
  }
  ShardFrame frame;
  frame.type = static_cast<ShardFrameType>(r.u16());
  const std::uint64_t size = r.u64();
  const std::uint32_t crc = r.u32();
  if (size > max_payload) {
    throw std::runtime_error("shard protocol: implausible payload size");
  }
  frame.payload.resize(size);
  if (size > 0 && !read_all(fd, frame.payload.data(), size, timeout_ms)) {
    throw std::runtime_error("shard protocol: unexpected EOF mid-frame");
  }
  if (shard_crc32(frame.payload) != crc) {
    throw std::runtime_error(
        "shard protocol: payload CRC mismatch (corrupted frame)");
  }
  return frame;
}

}  // namespace sereep
