#include "src/epp/cop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/epp/epp_engine.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"

namespace sereep {
namespace {

TEST(Cop, PrimaryOutputsFullyObservable) {
  const Circuit c = make_c17();
  const auto obs = cop_observability(c, parker_mccluskey_sp(c));
  for (NodeId po : c.outputs()) {
    EXPECT_DOUBLE_EQ(obs[po], 1.0);
  }
}

TEST(Cop, DffsCountAsObservationPoints) {
  const Circuit c = make_s27();
  const auto obs = cop_observability(c, parker_mccluskey_sp(c));
  for (NodeId ff : c.dffs()) {
    EXPECT_DOUBLE_EQ(obs[ff], 1.0);
  }
  // The D-pin driver of every FF is fully observable too.
  for (NodeId ff : c.dffs()) {
    EXPECT_DOUBLE_EQ(obs[c.fanin(ff)[0]], 1.0);
  }
}

TEST(Cop, MatchesEppOnFanoutFreePath) {
  // Without reconvergence COP and EPP agree: both reduce to the product of
  // side-input sensitization probabilities.
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId d = c.add_input("d");
  const NodeId g1 = c.add_gate(GateType::kAnd, "g1", {a, b});
  const NodeId g2 = c.add_gate(GateType::kNor, "g2", {g1, d});
  c.mark_output(g2);
  c.finalize();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto obs = cop_observability(c, sp);
  EppEngine engine(c, sp);
  for (NodeId site : {a, g1, g2}) {
    EXPECT_NEAR(obs[site], engine.p_sensitized(site), 1e-12)
        << c.node(site).name;
  }
}

TEST(Cop, BlindToReconvergentCancellation) {
  // y = XOR(BUFF(a), BUFF(a)): true observability of `a` is 0 (the flip
  // cancels), EPP sees it, COP cannot (independent-path union).
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId x1 = c.add_gate(GateType::kBuf, "x1", {a});
  const NodeId x2 = c.add_gate(GateType::kBuf, "x2", {a});
  const NodeId y = c.add_gate(GateType::kXor, "y", {x1, x2});
  c.mark_output(y);
  c.finalize();
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto obs = cop_observability(c, sp);
  EppEngine engine(c, sp);
  EXPECT_NEAR(engine.p_sensitized(a), 0.0, 1e-12);
  EXPECT_GT(obs[a], 0.9) << "COP should (wrongly) report near-certain";
}

TEST(Cop, AllValuesInUnitInterval) {
  const Circuit c = make_iscas89_like("s526");
  const auto obs = cop_observability(c, parker_mccluskey_sp(c));
  for (NodeId id = 0; id < c.node_count(); ++id) {
    EXPECT_GE(obs[id], 0.0) << c.node(id).name;
    EXPECT_LE(obs[id], 1.0 + 1e-12) << c.node(id).name;
  }
}

TEST(Cop, EppIsCloserToTruthOnRealCircuit) {
  // On a reconvergence-rich circuit EPP's mean error vs fault injection must
  // not exceed COP's — the headline structural advantage of the paper.
  const Circuit c = make_iscas89_like("s386");
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const auto obs = cop_observability(c, sp);
  EppEngine engine(c, sp);
  FaultInjector fi(c);
  McOptions opt;
  opt.num_vectors = 8192;

  double err_epp = 0, err_cop = 0;
  std::size_t n = 0;
  for (NodeId site : subsample_sites(error_sites(c), 80)) {
    const double mc = fi.run_site(site, opt).probability();
    err_epp += std::fabs(engine.p_sensitized(site) - mc);
    err_cop += std::fabs(obs[site] - mc);
    ++n;
  }
  EXPECT_LE(err_epp, err_cop + 1e-9)
      << "EPP mean err " << err_epp / n << " vs COP " << err_cop / n;
}

TEST(Cop, UnobservableWhenMaskedByConstant) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId z = c.add_const("zero", false);
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, z});
  c.mark_output(g);
  c.finalize();
  const auto obs = cop_observability(c, parker_mccluskey_sp(c));
  EXPECT_DOUBLE_EQ(obs[a], 0.0);
}

}  // namespace
}  // namespace sereep
