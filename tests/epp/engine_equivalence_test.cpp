// Engine-equivalence fuzz harness — the contract every perf PR must keep.
//
// The paper's claim is an all-nodes EPP sweep that is fast *and* exact, so
// every accelerated engine must compute bit-for-bit the same probabilities
// as the reference implementation. This suite generates random circuits
// across size / fanout-density / flip-flop profiles (seeded RNG, no
// wall-clock dependence anywhere) and pins the full oracle hierarchy
//
//     EppEngine (reference)  ->  CompiledEppEngine  ->  BatchedEppEngine
//
// with EXPECT_EQ on doubles — no tolerance — across:
//   * compute() records including all four Prob4 components per sink,
//   * planner-clustered batched sweeps,
//   * the parallel sweep at 1 / 2 / 8 threads,
//   * randomized site subsets through compute_sites_parallel,
//   * the batched engine's SIMD lane-plane kernels ON and OFF (the scalar
//     per-lane fallback is a peer tier of the hierarchy — see
//     SimdOnAndOffBitIdentical and tests/README.md),
//   * the sharded multi-process tier: the fuzz circuit round-trips to disk
//     and is swept through real `sereep worker` processes
//     (ShardedProcessSweepBitIdentical).
//
// Future engines join the hierarchy by being added here; a refactor that
// changes any floating-point result in any profile fails this file first.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sereep/sereep.hpp"
#include "src/epp/batched_epp.hpp"
#include "src/netlist/bench_io.hpp"
#include "src/epp/compiled_epp.hpp"
#include "src/epp/epp_engine.hpp"
#include "src/netlist/compiled.hpp"
#include "src/netlist/cone_cluster.hpp"
#include "src/netlist/generator.hpp"
#include "src/sim/fault_injection.hpp"
#include "src/util/rng.hpp"
#include "src/util/simd.hpp"
#include "tests/epp/site_epp_testutil.hpp"

namespace sereep {
namespace {

/// Restores the process-wide SIMD runtime switch on scope exit.
struct SimdGuard {
  bool saved = simd::enabled();
  ~SimdGuard() { simd::set_enabled(saved); }
};

/// One fuzz point: a structural profile plus the generator seed. Everything
/// downstream is a pure function of this struct.
struct FuzzProfile {
  const char* tag;
  std::size_t inputs;
  std::size_t outputs;
  std::size_t dffs;
  std::size_t gates;
  std::uint32_t depth;
  double reuse_bias;  ///< fanout-stem density (see GeneratorProfile)
  std::uint64_t seed;
};

// Spans the axes the engines are sensitive to: pure combinational vs
// FF-heavy (DFF boundary + self-feedback paths), sparse vs dense fanout
// (cone overlap and reconvergence), shallow-wide vs deep-narrow (bucket
// counts), and the 1-gate-deep degenerate corner.
const FuzzProfile kProfiles[] = {
    {"tiny_comb", 6, 4, 0, 25, 4, 0.30, 11},
    {"small_seq", 10, 6, 12, 120, 8, 0.35, 22},
    {"single_ff", 8, 4, 1, 60, 6, 0.35, 33},
    {"dense_fanout", 16, 10, 40, 600, 12, 0.70, 44},
    {"sparse_fanout", 16, 10, 40, 600, 12, 0.05, 55},
    {"deep_narrow", 8, 6, 30, 800, 30, 0.35, 66},
    {"ff_heavy", 12, 8, 150, 700, 10, 0.40, 77},
    {"mid_comb", 24, 16, 0, 1200, 16, 0.35, 88},
};

Circuit make_fuzz_circuit(const FuzzProfile& f) {
  GeneratorProfile p;
  p.name = std::string("fuzz_") + f.tag;
  p.num_inputs = f.inputs;
  p.num_outputs = f.outputs;
  p.num_dffs = f.dffs;
  p.num_gates = f.gates;
  p.target_depth = f.depth;
  p.reuse_bias = f.reuse_bias;
  return generate_circuit(p, f.seed);
}

class EngineEquivalence : public ::testing::TestWithParam<FuzzProfile> {};

TEST_P(EngineEquivalence, ComputeBitIdenticalAcrossHierarchy) {
  const Circuit c = make_fuzz_circuit(GetParam());
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine reference(c, sp);
  const CompiledCircuit cc(c);
  CompiledEppEngine compiled(cc, sp);
  BatchedEppEngine batched(cc, sp);
  for (NodeId site : error_sites(c)) {
    const SiteEpp ref = reference.compute(site);
    testutil::expect_site_epp_equal(c, ref, compiled.compute(site));
    testutil::expect_site_epp_equal(c, ref, batched.compute(site));
    EXPECT_EQ(batched.p_sensitized(site), reference.p_sensitized(site))
        << c.node(site).name;
  }
}

TEST_P(EngineEquivalence, PlannedClustersBitIdenticalToReference) {
  const Circuit c = make_fuzz_circuit(GetParam());
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine reference(c, sp);
  const CompiledCircuit cc(c);
  BatchedEppEngine batched(cc, sp);
  const std::vector<NodeId> sites = error_sites(c);

  const auto clusters = ConeClusterPlanner(cc).plan(sites);
  std::size_t covered = 0;
  for (const ConeCluster& cluster : clusters) {
    std::vector<NodeId> lane_sites;
    for (std::uint32_t idx : cluster.members) lane_sites.push_back(sites[idx]);
    std::vector<SiteEpp> out(lane_sites.size());
    batched.compute_cluster(lane_sites, out);
    for (std::size_t k = 0; k < lane_sites.size(); ++k) {
      testutil::expect_site_epp_equal(c, reference.compute(lane_sites[k]),
                                      out[k]);
    }
    covered += cluster.members.size();
  }
  EXPECT_EQ(covered, sites.size());  // every site in exactly one cluster
}

TEST_P(EngineEquivalence, ParallelSweepBitIdenticalAt_1_2_8_Threads) {
  const Circuit c = make_fuzz_circuit(GetParam());
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine reference(c, sp);
  std::vector<double> expected(c.node_count(), 0.0);
  for (NodeId site : error_sites(c)) {
    expected[site] = reference.p_sensitized(site);
  }
  for (unsigned threads : {1u, 2u, 8u}) {
    const std::vector<double> got =
        all_nodes_p_sensitized_parallel(c, sp, {}, threads);
    ASSERT_EQ(got.size(), expected.size());
    for (NodeId id = 0; id < c.node_count(); ++id) {
      EXPECT_EQ(got[id], expected[id])
          << GetParam().tag << " threads=" << threads << " node " << id;
    }
  }
}

TEST_P(EngineEquivalence, RandomSiteSubsetsBitIdentical) {
  const FuzzProfile& profile = GetParam();
  const Circuit c = make_fuzz_circuit(profile);
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine reference(c, sp);
  const CompiledCircuit cc(c);
  const std::vector<NodeId> all = error_sites(c);

  // Seeded subset draws — a Fisher-Yates prefix per round, sizes from one
  // lone site up to most of the circuit, each swept at a different thread
  // count.
  Rng rng(profile.seed ^ 0xf00dULL);
  const std::size_t sizes[] = {1, 3, all.size() / 4 + 2, all.size() / 2 + 1};
  unsigned threads = 1;
  for (std::size_t want : sizes) {
    std::vector<NodeId> pool = all;
    const std::size_t n = std::min(want, pool.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(n);
    const std::vector<SiteEpp> got =
        compute_sites_parallel(cc, pool, sp, {}, threads);
    ASSERT_EQ(got.size(), pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(got[i].site, pool[i]);  // caller order preserved
      testutil::expect_site_epp_equal(c, reference.compute(pool[i]), got[i]);
    }
    threads = threads == 8 ? 1 : threads * 2;
  }
}

TEST_P(EngineEquivalence, SimdOnAndOffBitIdentical) {
  // The lane-plane kernels and the scalar per-lane fallback must be
  // interchangeable: same reference-exact records through planner-built
  // clusters, and the same parallel-sweep output, with SIMD forced on and
  // forced off (whatever the build/environment default is).
  const Circuit c = make_fuzz_circuit(GetParam());
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  EppEngine reference(c, sp);
  const CompiledCircuit cc(c);
  const std::vector<NodeId> sites = error_sites(c);
  const auto clusters = ConeClusterPlanner(cc).plan(sites);

  SimdGuard guard;
  for (const bool simd_on : {true, false}) {
    simd::set_enabled(simd_on);
    BatchedEppEngine batched(cc, sp);
    for (const ConeCluster& cluster : clusters) {
      std::vector<NodeId> lane_sites;
      for (std::uint32_t idx : cluster.members) {
        lane_sites.push_back(sites[idx]);
      }
      std::vector<SiteEpp> out(lane_sites.size());
      batched.compute_cluster(lane_sites, out);
      for (std::size_t k = 0; k < lane_sites.size(); ++k) {
        testutil::expect_site_epp_equal(c, reference.compute(lane_sites[k]),
                                        out[k]);
      }
    }
    const std::vector<double> swept =
        all_nodes_p_sensitized_parallel(c, cc, sp, {}, 2);
    for (NodeId site : sites) {
      EXPECT_EQ(swept[site], reference.p_sensitized(site))
          << GetParam().tag << " simd=" << simd_on << " node " << site;
    }
  }
}

TEST_P(EngineEquivalence, ShardedProcessSweepBitIdentical) {
  // The multi-process tier joins the hierarchy here: the fuzz circuit is
  // written to disk (the workers' input vocabulary is a netlist spec), then
  // swept through real `sereep worker` processes and compared EXPECT_EQ
  // against the in-process batched session — shard merging must be a pure
  // re-route, exactly like every other engine selection.
  const Circuit c = make_fuzz_circuit(GetParam());
  const std::string path = ::testing::TempDir() + "/sereep_eq_" +
                           GetParam().tag + ".bench";
  ASSERT_TRUE(save_bench_file(c, path));

  Session batched = Session::open(path);
  Options opt;
  opt.engine = "sharded";
  opt.shard.shards = 3;
  opt.shard.worker_path = SEREEP_CLI_PATH;
  Session sharded = Session::open(path, std::move(opt));

  const std::vector<SiteEpp> want = batched.sweep();
  const std::vector<SiteEpp> got = sharded.sweep();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    testutil::expect_site_epp_equal(batched.circuit(), want[i], got[i]);
  }
  EXPECT_EQ(sharded.sweep_p_sensitized(), batched.sweep_p_sensitized());
  std::remove(path.c_str());
}

TEST_P(EngineEquivalence, OptionVariantsStayBitIdentical) {
  const Circuit c = make_fuzz_circuit(GetParam());
  const SignalProbabilities sp = parker_mccluskey_sp(c);
  const CompiledCircuit cc(c);
  const std::vector<NodeId> sites = error_sites(c);
  for (const EppOptions& options :
       {EppOptions{.track_polarity = false},
        EppOptions{.electrical_survival = 0.9}}) {
    EppEngine reference(c, sp, options);
    const std::vector<SiteEpp> got =
        compute_sites_parallel(cc, sites, sp, options, 2);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      testutil::expect_site_epp_equal(c, reference.compute(sites[i]), got[i]);
    }
  }
}

/// Seeded random edit batch over the current circuit: retypes, safe rewires
/// (level-guarded so the eager cycle check never fires), dangling inserts,
/// and TMR protections — the full post-finalize mutation vocabulary.
EditPlan random_edit_plan(const Circuit& c, Rng& rng, int round) {
  EditPlan plan;
  const auto levels = c.levels();
  const std::size_t ops = 1 + static_cast<std::size_t>(rng.below(4));
  for (std::size_t k = 0; k < ops; ++k) {
    switch (rng.below(5)) {
      case 0: {  // retype an n-ary gate among the 4 interchangeable types
        std::vector<NodeId> candidates;
        for (NodeId id = 0; id < c.node_count(); ++id) {
          if (is_combinational(c.type(id)) && c.fanin(id).size() >= 2) {
            candidates.push_back(id);
          }
        }
        if (candidates.empty()) break;
        const NodeId g = candidates[rng.below(candidates.size())];
        static constexpr GateType kNary[] = {GateType::kAnd, GateType::kOr,
                                             GateType::kNand, GateType::kNor};
        EditOp op;
        op.kind = EditOp::Kind::kRetype;
        op.node = c.node(g).name;
        op.type = kNary[rng.below(4)];
        plan.ops.push_back(std::move(op));
        break;
      }
      case 1: {  // rewire a gate fanin to a strictly lower level: acyclic
        std::vector<NodeId> gates;
        for (NodeId id = 0; id < c.node_count(); ++id) {
          if (is_combinational(c.type(id)) && !c.fanin(id).empty()) {
            gates.push_back(id);
          }
        }
        if (gates.empty()) break;
        const NodeId g = gates[rng.below(gates.size())];
        std::vector<NodeId> sources;
        for (NodeId id = 0; id < c.node_count(); ++id) {
          // Along a combinational path levels strictly increase, so a
          // lower-level source can never be reachable FROM g — no cycle.
          if (levels[id] < levels[g] && c.type(id) != GateType::kConst0 &&
              c.type(id) != GateType::kConst1) {
            sources.push_back(id);
          }
        }
        if (sources.empty()) break;
        EditOp op;
        op.kind = EditOp::Kind::kRewire;
        op.node = c.node(g).name;
        op.slot = static_cast<std::uint32_t>(rng.below(c.fanin(g).size()));
        op.source = c.node(sources[rng.below(sources.size())]).name;
        plan.ops.push_back(std::move(op));
        break;
      }
      case 2: {  // re-aim a DFF's D pin (never closes a combinational loop)
        if (c.dffs().empty()) break;
        const NodeId dff = c.dffs()[rng.below(c.dffs().size())];
        EditOp op;
        op.kind = EditOp::Kind::kRewire;
        op.node = c.node(dff).name;
        op.slot = 0;
        op.source = c.node(static_cast<NodeId>(rng.below(c.node_count())))
                        .name;
        plan.ops.push_back(std::move(op));
        break;
      }
      case 3: {  // dangling insert: a fresh (unobservable) error site
        EditOp op;
        op.kind = EditOp::Kind::kInsert;
        op.type = rng.below(2) == 0 ? GateType::kXor : GateType::kNand;
        op.name = "fz_" + std::to_string(round) + "_" + std::to_string(k);
        op.fanin = {
            c.node(static_cast<NodeId>(rng.below(c.node_count()))).name,
            c.node(static_cast<NodeId>(rng.below(c.node_count()))).name};
        plan.ops.push_back(std::move(op));
        break;
      }
      default: {  // TMR-protect a combinational gate
        std::vector<NodeId> candidates;
        for (NodeId id = 0; id < c.node_count(); ++id) {
          if (is_combinational(c.type(id))) candidates.push_back(id);
        }
        if (candidates.empty()) break;
        EditOp op;
        op.kind = EditOp::Kind::kTmr;
        op.node = c.node(candidates[rng.below(candidates.size())]).name;
        plan.ops.push_back(std::move(op));
        break;
      }
    }
  }
  if (plan.ops.empty()) {  // every draw hit an empty candidate pool
    EditOp op;
    op.kind = EditOp::Kind::kTmr;
    op.node = c.node(error_sites(c).back()).name;
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

TEST_P(EngineEquivalence, IncrementalEditSessionsBitIdenticalToRebuild) {
  // The incremental what-if tier joins the hierarchy here: warmed Sessions
  // absorb seeded random edit batches through apply_edit() — compiled CSR
  // patches, incremental SP repair, dirty-cone sweep splicing — and every
  // Prob4 component must stay EXPECT_EQ to a Session rebuilt from scratch
  // over the edited node table, across thread counts and both SIMD
  // configurations. A splice that misses one affected site fails here.
  const FuzzProfile& profile = GetParam();
  Rng rng(profile.seed ^ 0xed17ULL);
  SimdGuard guard;

  // Thread count and SIMD mode are fixed per session (reconfiguration
  // legitimately drops the incremental caches), so the matrix runs as
  // three warmed sessions receiving the same edits.
  struct Lane {
    unsigned threads;
    bool simd;
    std::unique_ptr<Session> session;
  };
  Lane lanes[] = {{1, false, nullptr}, {2, true, nullptr}, {8, false, nullptr}};
  for (Lane& lane : lanes) {
    Options opt;
    opt.threads = lane.threads;
    opt.simd = lane.simd;
    lane.session =
        std::make_unique<Session>(make_fuzz_circuit(profile), std::move(opt));
    (void)lane.session->sweep();  // warm the spliceable cache
  }

  for (int round = 0; round < 3; ++round) {
    const EditPlan plan =
        random_edit_plan(lanes[0].session->circuit(), rng, round);
    for (Lane& lane : lanes) lane.session->apply_edit(plan);

    // From-scratch oracle over the edited node table (the restore() path
    // is pinned equal to the edited circuit by tests/netlist/edit_test.cpp).
    const Circuit& edited = lanes[0].session->circuit();
    // restore() insists on clean tables: output flags come via output_order.
    std::vector<Node> nodes(edited.nodes().begin(), edited.nodes().end());
    for (Node& n : nodes) n.is_primary_output = false;
    Session full(Circuit::restore(edited.name(), std::move(nodes),
                                  edited.outputs()));
    const std::vector<SiteEpp> want = full.sweep();
    const std::vector<double> want_psens = full.sweep_p_sensitized();

    for (Lane& lane : lanes) {
      const std::vector<SiteEpp> got = lane.session->sweep();
      ASSERT_EQ(got.size(), want.size())
          << profile.tag << " round " << round;
      for (std::size_t i = 0; i < want.size(); ++i) {
        testutil::expect_site_epp_equal(edited, want[i], got[i]);
      }
      EXPECT_EQ(lane.session->sweep_p_sensitized(), want_psens)
          << profile.tag << " round " << round << " threads="
          << lane.threads;
      EXPECT_EQ(lane.session->ser().total_ser, full.ser().total_ser)
          << profile.tag << " round " << round;
    }
    // The splice must actually be incremental, not a silent full rebuild:
    // after a warmed sweep, edits route through the spliced path.
    EXPECT_EQ(lanes[0].session->incremental_stats().spliced_sweeps,
              static_cast<std::size_t>(round + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, EngineEquivalence, ::testing::ValuesIn(kProfiles),
    [](const ::testing::TestParamInfo<FuzzProfile>& info) {
      return std::string(info.param.tag);
    });

}  // namespace
}  // namespace sereep
