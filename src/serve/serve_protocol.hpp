// `sereep serve` request codec — one analysis request per kRequest frame.
//
// The serve daemon (server.hpp) reuses the shard wire format
// (src/epp/shard_protocol.hpp: magic + version + type + length + CRC
// framing) and adds exactly one request payload shape and one response
// convention on top:
//
//   client -> server   kRequest    one ServeRequest (this codec)
//   server -> client   kResponse   the RAW BYTES of the rendering the
//                                  in-process Session would produce —
//                                  sweep_csv() / ser_csv() / harden_text()
//                                  verbatim, so a served response is
//                                  byte-identical to a local run by
//                                  construction (the loopback tests cmp it)
//   server -> client   kError      human-readable failure message
//
// Requests are UNTRUSTED input: decode_request() bounds every length field
// and names the defect in its exception, and the server reads frames with a
// tight max_payload so a hostile declared length can never drive a huge
// allocation. A connection carries any number of requests in sequence;
// framing-level garbage closes it, semantic errors (unknown netlist / node)
// only fail the one request.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sereep {

/// Which rendering the client wants. Values are wire-stable.
enum class ServeRequestKind : std::uint8_t {
  kSweepCsv = 1,    ///< Session::sweep_csv()   — node,type,p_sensitized rows
  kSerCsv = 2,      ///< Session::ser_csv()     — full SER rows
  kHardenText = 3,  ///< Session::harden_text(target) — hardening-plan text
  kPSensitized = 4, ///< one site's P_sensitized, "%.17g\n" (needs `node`)
  /// The server's metrics snapshot as "name value\n" text lines
  /// (src/serve/metrics.hpp documents the exact keys) — the only kind whose
  /// `netlist` field may (and should) be empty; it never touches the
  /// Session cache. Protocol v4; an older daemon answers kError
  /// ("unknown request kind"), which is the backward-compatible failure.
  kStats = 5,
  /// Apply a Circuit::edit() batch (`edit` holds a parse_edit_spec() spec)
  /// to the cached Session for `netlist`, then answer a deterministic
  /// "edit applied" summary (dirty/inserted counts + cumulative
  /// IncrementalStats). Later requests against the same netlist see the
  /// edited circuit and splice their sweeps from the incremental caches.
  /// Protocol v5; the `edit` string travels ONLY for this kind, so the
  /// v4 payload layout of kinds 1..5 is byte-identical. An older daemon
  /// answers kError ("unknown request kind 6") — again the
  /// backward-compatible failure, not a frame-level breakage.
  kEdit = 6,
};

/// One request. `netlist` is anything load_netlist() accepts (embedded name
/// or a path VISIBLE TO THE SERVER — the netlist travels by reference, not
/// by value). `target` is read only by kHardenText, `node` only by
/// kPSensitized, `edit` only by kEdit (and only travels for it); kStats
/// reads no field at all.
struct ServeRequest {
  ServeRequestKind kind = ServeRequestKind::kSweepCsv;
  std::string netlist;
  double target = 0.5;
  std::string node;
  std::string edit;
};

/// Tight per-frame payload bound the server passes to read_shard_frame():
/// a request is a kind byte, a double, and two short strings — 1 MiB is
/// already generous by three orders of magnitude.
inline constexpr std::uint64_t kMaxServeRequestPayload = std::uint64_t{1}
                                                         << 20;

/// Longest netlist spec / node name decode_request() accepts. Paths and
/// gate names are short; a longer field is a malformed or hostile frame.
inline constexpr std::uint64_t kMaxServeStringBytes = 4096;

/// Payload bytes for a kRequest frame (no header — write_shard_frame adds
/// it).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const ServeRequest& r);

/// Decodes a kRequest payload. Throws std::runtime_error naming the defect
/// (truncation, trailing bytes, unknown kind, over-long string field) — the
/// server turns that into a kError frame and closes the connection.
[[nodiscard]] ServeRequest decode_request(
    std::span<const std::uint8_t> payload);

}  // namespace sereep
