// Locating the running executable and its sibling binaries.
//
// The sharded sweep tier spawns `sereep worker` processes from the `sereep`
// binary itself, and the bench harnesses look for that binary next to
// themselves in the build tree — one resolver, used by all of them, instead
// of a per-binary readlink copy.
#pragma once

#include <string>

namespace sereep {

/// Absolute path of the running executable (/proc/self/exe). Empty when
/// unreadable — callers must treat that as "no worker binary available",
/// never guess.
[[nodiscard]] std::string self_exe_path();

/// Path of a binary named `name` in the running executable's directory
/// ("" when the executable path is unknown). `require_executable` filters
/// to files the process may exec — the bench harnesses use it to skip
/// their sharded rows gracefully outside a full build tree.
[[nodiscard]] std::string sibling_binary_path(const std::string& name,
                                              bool require_executable = true);

}  // namespace sereep
