#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"

namespace sereep {
namespace {

TEST(BitParallelSimulator, C17KnownVector) {
  const Circuit c = make_c17();
  BitParallelSimulator sim(c);
  // Vector: 1=1, 2=0, 3=1, 6=1, 7=0 (single vector in bit 0).
  sim.values()[*c.find("1")] = 1;
  sim.values()[*c.find("2")] = 0;
  sim.values()[*c.find("3")] = 1;
  sim.values()[*c.find("6")] = 1;
  sim.values()[*c.find("7")] = 0;
  sim.eval();
  // 10 = NAND(1,3) = 0; 11 = NAND(3,6) = 0; 16 = NAND(2,11) = 1;
  // 19 = NAND(11,7) = 1; 22 = NAND(10,16) = 1; 23 = NAND(16,19) = 0.
  EXPECT_EQ(sim.values()[*c.find("10")] & 1, 0u);
  EXPECT_EQ(sim.values()[*c.find("11")] & 1, 0u);
  EXPECT_EQ(sim.values()[*c.find("16")] & 1, 1u);
  EXPECT_EQ(sim.values()[*c.find("19")] & 1, 1u);
  EXPECT_EQ(sim.values()[*c.find("22")] & 1, 1u);
  EXPECT_EQ(sim.values()[*c.find("23")] & 1, 0u);
}

TEST(BitParallelSimulator, MatchesScalarOnRandomCircuit) {
  const Circuit c = make_iscas89_like("s344");
  BitParallelSimulator packed(c);
  ScalarSimulator scalar(c);
  Rng rng(3);
  packed.randomize_sources(rng);
  packed.eval();
  // Check 8 of the 64 lanes against the scalar reference.
  for (int lane = 0; lane < 8; ++lane) {
    std::vector<bool> src;
    for (NodeId s : c.sources()) {
      src.push_back(((packed.values()[s] >> lane) & 1) != 0);
    }
    // std::vector<bool> is packed; copy into a flat buffer for the span API.
    std::vector<std::uint8_t> flat(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) flat[i] = src[i];
    std::unique_ptr<bool[]> buf(new bool[src.size()]);
    for (std::size_t i = 0; i < src.size(); ++i) buf[i] = flat[i] != 0;
    scalar.eval(std::span<const bool>(buf.get(), src.size()));
    for (NodeId id = 0; id < c.node_count(); ++id) {
      EXPECT_EQ(((packed.values()[id] >> lane) & 1) != 0, scalar.value(id))
          << "node " << c.node(id).name << " lane " << lane;
    }
  }
}

TEST(BitParallelSimulator, ConstantsHold) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId k1 = c.add_const("one", true);
  const NodeId g = c.add_gate(GateType::kAnd, "g", {a, k1});
  c.mark_output(g);
  c.finalize();
  BitParallelSimulator sim(c);
  sim.values()[a] = 0xF0F0;
  sim.eval();
  EXPECT_EQ(sim.values()[g], 0xF0F0ULL) << "AND with constant 1 is identity";
}

TEST(BitParallelSimulator, SequentialClocking) {
  // Divide-by-two: ff <- NOT(ff). State must toggle each clock.
  Circuit c;
  c.add_input("dummy");
  const NodeId ff = c.add_dff_placeholder("ff");
  const NodeId n = c.add_gate(GateType::kNot, "n", {ff});
  c.connect_dff(ff, n);
  c.mark_output(n);
  c.finalize();

  BitParallelSimulator sim(c);
  sim.values()[ff] = 0;  // reset state
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.eval();
    const std::uint64_t expected = cycle % 2 == 0 ? 0ULL : ~0ULL;
    EXPECT_EQ(sim.values()[ff], expected) << "cycle " << cycle;
    sim.clock();
  }
}

TEST(BitParallelSimulator, S27SequentialRuns) {
  const Circuit c = make_s27();
  BitParallelSimulator sim(c);
  Rng rng(5);
  // Reset state to zero, then clock 16 cycles with random inputs. No crash
  // and the PO stays a function of state+inputs (smoke + determinism).
  for (NodeId ff : c.dffs()) sim.values()[ff] = 0;
  std::vector<std::uint64_t> trace;
  for (int cycle = 0; cycle < 16; ++cycle) {
    sim.randomize_inputs_only(rng);
    sim.eval();
    trace.push_back(sim.values()[*c.find("G17")]);
    sim.clock();
  }
  // Re-run with same seed: identical trace.
  BitParallelSimulator sim2(c);
  Rng rng2(5);
  for (NodeId ff : c.dffs()) sim2.values()[ff] = 0;
  for (int cycle = 0; cycle < 16; ++cycle) {
    sim2.randomize_inputs_only(rng2);
    sim2.eval();
    EXPECT_EQ(sim2.values()[*c.find("G17")], trace[cycle]);
    sim2.clock();
  }
}

TEST(BitParallelSimulator, SinkWordReadsDffDPin) {
  Circuit c;
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(GateType::kNot, "g", {a});
  const NodeId ff = c.add_dff_placeholder("ff");
  c.connect_dff(ff, g);
  c.mark_output(g);
  c.finalize();
  BitParallelSimulator sim(c);
  sim.values()[a] = 0xAAAA;
  sim.values()[ff] = 0;
  sim.eval();
  EXPECT_EQ(sim.sink_word(ff), ~0xAAAAULL) << "D pin is NOT(a)";
  EXPECT_EQ(sim.sink_word(g), ~0xAAAAULL);
}

TEST(ScalarSimulator, XorChainParity) {
  Circuit c;
  std::vector<NodeId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(c.add_input("i" + std::to_string(i)));
  const NodeId x = c.add_gate(GateType::kXor, "x", ins);
  c.mark_output(x);
  c.finalize();
  ScalarSimulator sim(c);
  for (int mask = 0; mask < 32; ++mask) {
    std::unique_ptr<bool[]> buf(new bool[5]);
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      buf[i] = (mask >> i) & 1;
      ones += (mask >> i) & 1;
    }
    sim.eval(std::span<const bool>(buf.get(), 5));
    EXPECT_EQ(sim.value(x), ones % 2 == 1) << "mask " << mask;
  }
}

}  // namespace
}  // namespace sereep
