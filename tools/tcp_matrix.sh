#!/usr/bin/env bash
# Loopback TCP acceptance matrix — the distributed tier, end to end through
# the REAL binary on 127.0.0.1:
#
#   1. sweep/ser × c17/s27 × pipe/tcp × shards=2, cmp'd byte-for-byte
#      against the committed golden CSVs (and against each other — the
#      transport must be invisible in the bytes).
#   2. `sereep serve` + `sereep client` round-trips, cmp'd against the same
#      goldens — the daemon's kResponse body IS the local rendering.
#   3. Recovery: a remote worker SIGKILLed while slow-streaming its result
#      frames (mid-stream socket close) must be re-dispatched onto the
#      surviving worker and still produce the batched engine's exact bytes.
#
# Every worker/daemon stderr lands in $TCP_MATRIX_LOGDIR (default
# ./tcp-matrix-logs) so CI can upload them as artifacts on failure.
#
# Usage: tools/tcp_matrix.sh path/to/sereep [path/to/tests/data]
set -euo pipefail

BIN=${1:?usage: tcp_matrix.sh path/to/sereep [path/to/tests/data]}
DATA=${2:-"$(dirname "$0")/../tests/data"}
LOGDIR=${TCP_MATRIX_LOGDIR:-tcp-matrix-logs}
mkdir -p "$LOGDIR"
WORK=$(mktemp -d)
PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill -9 -- "-$pid" "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon NAME ARGS... — spawns "$BIN ARGS..." in its OWN process
# group (setsid), so killing "-$pid" takes down the accept loop AND its
# forked per-connection children. Waits for the "listening on HOST:PORT"
# line, then sets DAEMON_PID/DAEMON_PORT (globals, NOT echoed: a $(...)
# capture would run this in a subshell and lose the PIDS bookkeeping).
# Stderr goes to $LOGDIR/NAME.err.
start_daemon() {
  local name=$1
  shift
  setsid "$BIN" "$@" > "$WORK/$name.out" 2> "$LOGDIR/$name.err" &
  DAEMON_PID=$!
  PIDS+=("$DAEMON_PID")
  local i
  for i in $(seq 1 200); do
    if grep -q 'listening on' "$WORK/$name.out" 2> /dev/null; then
      DAEMON_PORT=$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/$name.out")
      return 0
    fi
    sleep 0.05
  done
  echo "error: $name never reported a listening port" >&2
  return 1
}

echo "== golden matrix: sweep/ser x c17/s27 x pipe/tcp, shards=2"
for circuit in c17 s27; do
  start_daemon "worker-${circuit}-1" worker --netlist="$circuit" --listen=0
  p1=$DAEMON_PORT
  start_daemon "worker-${circuit}-2" worker --netlist="$circuit" --listen=0
  p2=$DAEMON_PORT
  hosts="127.0.0.1:$p1,127.0.0.1:$p2"
  for cmd in sweep ser; do
    golden="$DATA/${cmd}_${circuit}.golden.csv"
    "$BIN" "$cmd" "$circuit" --engine=sharded --shards=2 \
      --csv="$WORK/pipe.csv"
    cmp "$WORK/pipe.csv" "$golden"
    "$BIN" "$cmd" "$circuit" --engine=sharded --shards=2 \
      --shard-hosts="$hosts" --csv="$WORK/tcp.csv"
    cmp "$WORK/tcp.csv" "$golden"
    cmp "$WORK/pipe.csv" "$WORK/tcp.csv"
    echo "   ok: $cmd $circuit (pipe == tcp == golden)"
  done
done

echo "== serve/client round-trips vs goldens"
start_daemon serve serve --port=0
sport=$DAEMON_PORT
for circuit in c17 s27; do
  for cmd in sweep ser; do
    "$BIN" client "$cmd" "$circuit" --connect="127.0.0.1:$sport" \
      --o="$WORK/client.out"
    cmp "$WORK/client.out" "$DATA/${cmd}_${circuit}.golden.csv"
    echo "   ok: client $cmd $circuit"
  done
done

echo "== recovery: SIGKILL a remote worker mid-stream"
# slow-stream=200 holds dispatch 0's result stream open; the kill lands
# mid-sweep, the supervisor re-dispatches onto the survivor, and the bytes
# must still equal the batched engine's.
"$BIN" sweep s953 --csv="$WORK/ref.csv"
export SEREEP_FAULT_PLAN="0:slow-stream=200"
start_daemon worker-kill-1 worker --netlist=s953 --listen=0
victim=$DAEMON_PID
k1=$DAEMON_PORT
start_daemon worker-kill-2 worker --netlist=s953 --listen=0
k2=$DAEMON_PORT
unset SEREEP_FAULT_PLAN
(
  sleep 0.1
  kill -9 -- "-$victim" 2> /dev/null || true
) &
"$BIN" sweep s953 --engine=sharded --shards=2 \
  --shard-hosts="127.0.0.1:$k1,127.0.0.1:$k2" --shard-retries=3 \
  --csv="$WORK/recovered.csv"
cmp "$WORK/recovered.csv" "$WORK/ref.csv"
echo "   ok: killed worker recovered bit-identically"

echo "tcp_matrix: all checks passed"
