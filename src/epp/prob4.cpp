#include "src/epp/prob4.hpp"

#include "src/util/strings.hpp"

namespace sereep {

std::string Prob4::to_string(int decimals) const {
  std::string s;
  s += format_fixed(a(), decimals) + "(a) + ";
  s += format_fixed(abar(), decimals) + "(\xC4\x81) + ";  // "ā"
  s += format_fixed(zero(), decimals) + "(0) + ";
  s += format_fixed(one(), decimals) + "(1)";
  return s;
}

}  // namespace sereep
