// Shard wire protocol — versioned length-prefixed frames over a byte pipe.
//
// The sharded sweep engine (sharded_epp.hpp) talks to its worker processes
// over plain pipes with a binary frame stream:
//
//   +--------+---------+------+--------------+---------------+
//   | magic  | version | type | payload size | payload bytes |
//   | u32    | u16     | u16  | u64          | ...           |
//   +--------+---------+------+--------------+---------------+
//
// All integers are little-endian fixed width; doubles travel as their IEEE
// bit pattern in a u64, so a value that crosses the pipe is THE value — the
// parent's merged sweep can stay bit-for-bit identical to an in-process run.
// The magic + version header makes a stream from a mismatched binary (or a
// stray print into stdout) a loud protocol error rather than garbage
// results; bumping kShardProtocolVersion invalidates old workers explicitly.
//
// Conversation (one per worker):
//   parent -> worker   kJob      EPP options, SP table, assigned site list
//   worker -> parent   kResults  a batch of SiteEpp records (repeated)
//   worker -> parent   kDone     total record count (completeness check)
//   worker -> parent   kError    human-readable failure message
//
// The worker streams results as it computes; the parent requires the kDone
// total to match both the streamed count and its assignment, so a worker
// that dies mid-stream (EOF before kDone) or skips sites can never produce
// a silent partial sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/epp/epp_engine.hpp"
#include "src/netlist/circuit.hpp"

namespace sereep {

inline constexpr std::uint32_t kShardMagic = 0x53'52'50'46;  // "SRPF"
inline constexpr std::uint16_t kShardProtocolVersion = 1;

/// Frame kinds (the `type` header field).
enum class ShardFrameType : std::uint16_t {
  kJob = 1,      ///< parent -> worker: the shard's whole assignment
  kResults = 2,  ///< worker -> parent: a batch of SiteEpp records
  kDone = 3,     ///< worker -> parent: total streamed record count (u64)
  kError = 4,    ///< worker -> parent: failure message (UTF-8 bytes)
};

/// One decoded frame.
struct ShardFrame {
  ShardFrameType type = ShardFrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Everything a worker needs to compute its shard. The SP table is the
/// PARENT'S — workers must not recompute it (a different SP source or seed
/// would change results); the netlist itself travels out of band (the
/// worker's --netlist flag), since both sides load it deterministically.
struct ShardJob {
  EppOptions epp;
  unsigned threads = 1;
  /// Options::simd tri-state: 0 = leave the worker's default, 1 = force the
  /// scalar path, 2 = force the SIMD kernels (timing only — bit-identical).
  std::uint8_t simd_mode = 0;
  /// True when the sweep only needs p_sensitized: workers skip per-sink
  /// record assembly and stream records with empty sink lists.
  bool p_only = false;
  std::vector<double> sp;       ///< per-node P(1), indexed by NodeId
  std::vector<NodeId> sites;    ///< assigned sites, plan order
};

// ---- payload codecs --------------------------------------------------------
// Encoders produce payload bytes (no header); decoders throw
// std::runtime_error on truncated or malformed payloads.

[[nodiscard]] std::vector<std::uint8_t> encode_job(const ShardJob& job);
[[nodiscard]] ShardJob decode_job(std::span<const std::uint8_t> payload);

/// Split encoding for the fan-out loop: the prefix (options + the whole SP
/// table — identical for every shard of one sweep, and by far the bulk of
/// the bytes) is built ONCE, and each shard's payload is prefix +
/// append_job_sites(). Byte-for-byte equal to encode_job() of the same
/// fields.
[[nodiscard]] std::vector<std::uint8_t> encode_job_prefix(const ShardJob& job);
void append_job_sites(std::vector<std::uint8_t>& payload,
                      std::span<const NodeId> sites);

[[nodiscard]] std::vector<std::uint8_t> encode_results(
    std::span<const SiteEpp> records);
[[nodiscard]] std::vector<SiteEpp> decode_results(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_done(std::uint64_t total);
[[nodiscard]] std::uint64_t decode_done(std::span<const std::uint8_t> payload);

// ---- frame I/O over file descriptors ---------------------------------------

/// Writes one complete frame (header + payload), retrying short writes.
/// Throws std::runtime_error on any write failure — with SIGPIPE ignored,
/// a dead reader surfaces here as EPIPE.
void write_shard_frame(int fd, ShardFrameType type,
                       std::span<const std::uint8_t> payload);

/// Reads one complete frame. Returns nullopt on clean EOF at a frame
/// boundary; throws std::runtime_error on EOF mid-frame, a bad magic or
/// version, or an implausible payload size — a killed worker is therefore
/// always an exception or a missing kDone, never silent truncation.
[[nodiscard]] std::optional<ShardFrame> read_shard_frame(int fd);

}  // namespace sereep
