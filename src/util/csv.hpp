// CSV emission for benchmark results.
//
// Each bench binary can optionally mirror its ASCII table into a CSV file so
// downstream plotting (figure regeneration) does not re-parse ASCII art.
#pragma once

#include <string>
#include <vector>

namespace sereep {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// comma/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Serializes all rows, header first.
  [[nodiscard]] std::string str() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sereep
