// EngineRegistry + the built-in engine adapters.
//
// Each adapter wraps one tier of the oracle hierarchy (see tests/README.md)
// behind IEppEngine. The wrappers add NO arithmetic — per-site calls forward
// verbatim and sweeps either loop the per-site path (sequential engines) or
// forward to the planner-reusing parallel routes (batched), so registry
// resolution is bit-for-bit equal to direct construction by construction;
// tests/api/engine_registry_test.cpp pins it anyway.
#include "sereep/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/epp/batched_epp.hpp"
#include "src/epp/compiled_epp.hpp"
#include "src/epp/sharded_epp.hpp"

namespace sereep {

namespace {

/// "reference": the paper-shaped EppEngine over Circuit node structs.
class ReferenceEngine final : public IEppEngine {
 public:
  explicit ReferenceEngine(const EngineContext& ctx)
      : engine_(*ctx.circuit, *ctx.sp, ctx.epp) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "reference";
  }
  [[nodiscard]] EngineCaps caps() const noexcept override { return {}; }

  [[nodiscard]] SiteEpp compute(NodeId site) override {
    return engine_.compute(site);
  }
  [[nodiscard]] double p_sensitized(NodeId site) override {
    return engine_.p_sensitized(site);
  }
  [[nodiscard]] std::vector<SiteEpp> sweep(std::span<const NodeId> sites,
                                           unsigned /*threads*/) override {
    std::vector<SiteEpp> out;
    out.reserve(sites.size());
    for (NodeId site : sites) out.push_back(engine_.compute(site));
    return out;
  }
  [[nodiscard]] std::vector<double> sweep_p_sensitized(
      std::span<const NodeId> sites, unsigned /*threads*/) override {
    std::vector<double> out;
    out.reserve(sites.size());
    for (NodeId site : sites) out.push_back(engine_.p_sensitized(site));
    return out;
  }

 private:
  EppEngine engine_;
};

/// "compiled": the flat-CSR single-site hot path.
class CompiledEngine final : public IEppEngine {
 public:
  explicit CompiledEngine(const EngineContext& ctx)
      : engine_(*ctx.compiled, *ctx.sp, ctx.epp) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "compiled";
  }
  [[nodiscard]] EngineCaps caps() const noexcept override { return {}; }

  [[nodiscard]] SiteEpp compute(NodeId site) override {
    return engine_.compute(site);
  }
  [[nodiscard]] double p_sensitized(NodeId site) override {
    return engine_.p_sensitized(site);
  }
  [[nodiscard]] std::vector<SiteEpp> sweep(std::span<const NodeId> sites,
                                           unsigned /*threads*/) override {
    std::vector<SiteEpp> out;
    out.reserve(sites.size());
    for (NodeId site : sites) out.push_back(engine_.compute(site));
    return out;
  }
  [[nodiscard]] std::vector<double> sweep_p_sensitized(
      std::span<const NodeId> sites, unsigned /*threads*/) override {
    std::vector<double> out;
    out.reserve(sites.size());
    for (NodeId site : sites) out.push_back(engine_.p_sensitized(site));
    return out;
  }

 private:
  CompiledEppEngine engine_;
};

/// "batched": cone-sharing clusters + lane-plane SIMD kernels; sweeps run
/// the work-stealing parallel routes, reusing the context's cluster planner
/// when one is provided (the Session always provides its memoized one).
class BatchedEngine final : public IEppEngine {
 public:
  explicit BatchedEngine(const EngineContext& ctx)
      : compiled_(*ctx.compiled),
        sp_(*ctx.sp),
        epp_(ctx.epp),
        planner_(ctx.planner),
        planner_source_(ctx.planner_source),
        engine_(*ctx.compiled, *ctx.sp, ctx.epp) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "batched";
  }
  [[nodiscard]] EngineCaps caps() const noexcept override {
    return {.threads = true, .simd = true};
  }

  [[nodiscard]] SiteEpp compute(NodeId site) override {
    return engine_.compute(site);  // a 1-lane cluster — bit-identical
  }
  [[nodiscard]] double p_sensitized(NodeId site) override {
    return engine_.p_sensitized(site);
  }
  [[nodiscard]] std::vector<SiteEpp> sweep(std::span<const NodeId> sites,
                                           unsigned threads) override {
    if (const ConeClusterPlanner* planner = resolve_planner()) {
      return compute_sites_parallel(compiled_, *planner, sites, sp_, epp_,
                                    threads);
    }
    return compute_sites_parallel(compiled_, sites, sp_, epp_, threads);
  }
  [[nodiscard]] std::vector<double> sweep_p_sensitized(
      std::span<const NodeId> sites, unsigned threads) override {
    if (const ConeClusterPlanner* planner = resolve_planner()) {
      return p_sensitized_sites_parallel(compiled_, *planner, sites, sp_,
                                         epp_, threads);
    }
    return p_sensitized_sites_parallel(compiled_, ConeClusterPlanner(compiled_),
                                       sites, sp_, epp_, threads);
  }

 private:
  /// The context's plan, resolved lazily: per-site queries never trigger a
  /// deferred planner_source; sweeps resolve it once and keep it.
  [[nodiscard]] const ConeClusterPlanner* resolve_planner() {
    if (planner_ == nullptr && planner_source_) {
      planner_ = planner_source_();
      planner_source_ = nullptr;
    }
    return planner_;
  }

  const CompiledCircuit& compiled_;
  const SignalProbabilities& sp_;
  EppOptions epp_;
  const ConeClusterPlanner* planner_;  ///< may be null (see resolve_planner)
  std::function<const ConeClusterPlanner*()> planner_source_;
  BatchedEppEngine engine_;
};

void require_context(const EngineContext& context) {
  if (context.circuit == nullptr || context.compiled == nullptr ||
      context.sp == nullptr) {
    throw std::invalid_argument(
        "EngineContext: circuit, compiled and sp must all be set");
  }
}

}  // namespace

EngineRegistry& EngineRegistry::instance() {
  // Built-ins registered on first touch — no static-initialization-order
  // dependence, and linking the registry always brings them along.
  static EngineRegistry registry = [] {
    EngineRegistry r;
    r.add("reference", {}, [](const EngineContext& ctx) {
      return std::unique_ptr<IEppEngine>(new ReferenceEngine(ctx));
    });
    r.add("compiled", {}, [](const EngineContext& ctx) {
      return std::unique_ptr<IEppEngine>(new CompiledEngine(ctx));
    });
    r.add("batched", {.threads = true, .simd = true},
          [](const EngineContext& ctx) {
            return std::unique_ptr<IEppEngine>(new BatchedEngine(ctx));
          });
    // The multi-process tier (src/epp/sharded_epp.hpp): sweeps fan out to
    // `sereep worker` processes when ShardOptions names a worker binary and
    // netlist spec; per-site queries run in-process. Bit-for-bit equal to
    // batched — sharding only partitions work.
    r.add("sharded", {.threads = true, .simd = true, .processes = true},
          [](const EngineContext& ctx) {
            return std::unique_ptr<IEppEngine>(new ShardedEppEngine(ctx));
          });
    return r;
  }();
  return registry;
}

bool EngineRegistry::add(std::string name, EngineCaps caps, Factory factory) {
  if (name.empty() || factory == nullptr || find(name) != nullptr) {
    return false;
  }
  entries_.push_back({std::move(name), caps, std::move(factory)});
  return true;
}

const EngineRegistry::Entry* EngineRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool EngineRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string EngineRegistry::names_joined() const {
  std::string out;
  for (const std::string& n : names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

EngineCaps EngineRegistry::caps(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::invalid_argument("unknown engine '" + std::string(name) +
                                "' (registered: " + names_joined() + ")");
  }
  return e->caps;
}

std::unique_ptr<IEppEngine> EngineRegistry::create(
    std::string_view name, const EngineContext& context) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::invalid_argument("unknown engine '" + std::string(name) +
                                "' (registered: " + names_joined() + ")");
  }
  require_context(context);
  std::unique_ptr<IEppEngine> engine = e->factory(context);
  // The registered flags are the load-bearing copy (planner wiring, CLI
  // listing); an implementation whose caps() drifts from them would
  // silently mis-wire — catch it at the single choke point instead.
  const EngineCaps actual = engine->caps();
  if (actual.threads != e->caps.threads || actual.simd != e->caps.simd ||
      actual.processes != e->caps.processes) {
    throw std::logic_error(
        "engine '" + e->name +
        "': capability flags declared at registration disagree with the "
        "implementation's caps()");
  }
  return engine;
}

}  // namespace sereep
