#include "src/ser/tmr.hpp"

#include <algorithm>
#include <cassert>

namespace sereep {

TmrResult apply_tmr(const Circuit& circuit, std::span<const NodeId> protect) {
  assert(circuit.finalized());
  std::vector<std::uint8_t> is_protected(circuit.node_count(), 0);
  for (NodeId id : protect) {
    if (id < circuit.node_count() && is_combinational(circuit.type(id))) {
      is_protected[id] = 1;
    }
  }

  TmrResult out;
  out.circuit = Circuit(circuit.name() + "_tmr");
  Circuit& c = out.circuit;

  // Pass 1: primary inputs, constants, DFF placeholders (sources resolve
  // forward references exactly as the .bench parser does).
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const Node& node = circuit.node(id);
    switch (node.type) {
      case GateType::kInput:
        out.signal_map[id] = c.add_input(node.name);
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        out.signal_map[id] =
            c.add_const(node.name, node.type == GateType::kConst1);
        break;
      case GateType::kDff:
        out.signal_map[id] = c.add_dff_placeholder(node.name);
        break;
      default:
        break;
    }
  }

  // Pass 2: gates in topological order; protected gates expand to three
  // copies plus a 2-level AND/OR majority voter.
  const auto mapped_fanin = [&](const Node& node) {
    std::vector<NodeId> fanin;
    fanin.reserve(node.fanin.size());
    for (NodeId f : node.fanin) fanin.push_back(out.signal_map.at(f));
    return fanin;
  };
  for (NodeId id : circuit.topo_order()) {
    const Node& node = circuit.node(id);
    if (!is_combinational(node.type)) continue;
    if (!is_protected[id]) {
      out.signal_map[id] = c.add_gate(node.type, node.name, mapped_fanin(node));
      continue;
    }
    const std::vector<NodeId> fanin = mapped_fanin(node);
    const NodeId ca = c.add_gate(node.type, node.name + "__tmr_a", fanin);
    const NodeId cb = c.add_gate(node.type, node.name + "__tmr_b", fanin);
    const NodeId cc = c.add_gate(node.type, node.name + "__tmr_c", fanin);
    const NodeId ab = c.add_gate(GateType::kAnd, node.name + "__vab", {ca, cb});
    const NodeId bc = c.add_gate(GateType::kAnd, node.name + "__vbc", {cb, cc});
    const NodeId ac = c.add_gate(GateType::kAnd, node.name + "__vac", {ca, cc});
    const NodeId maj =
        c.add_gate(GateType::kOr, node.name, {ab, bc, ac});
    out.signal_map[id] = maj;
    ++out.gates_protected;
    out.gates_added += 6;  // two extra copies + three ANDs + one OR... minus
                           // the original: net +6 gates per protected gate
  }

  // Pass 3: DFF data inputs and primary outputs.
  for (NodeId id : circuit.dffs()) {
    c.connect_dff(out.signal_map.at(id),
                  out.signal_map.at(circuit.fanin(id)[0]));
  }
  for (NodeId id : circuit.outputs()) {
    c.mark_output(out.signal_map.at(id));
  }
  c.finalize();
  return out;
}

}  // namespace sereep
