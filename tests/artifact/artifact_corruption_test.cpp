// .sca corruption rejection — a damaged artifact ALWAYS throws, never UB.
//
// The loader hands its arrays to kernels that index without bounds checks,
// so the validation pass in ArtifactView's constructor is the only wall
// between a flipped bit on disk and silent garbage (or a crash) in a sweep.
// These tests attack the file the way disks and truncated copies do —
// prefix truncation at every interesting length, a byte flipped in every
// section, tampered header fields, wrong magic/endianness/version, and a
// seeded random-flip fuzz — and require the SAME observable outcome each
// time: ArtifactError with a diagnostic carrying the path and, for section
// damage, the section NAME (a checksum failure you can act on beats
// "invalid file").
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "src/artifact/compiled_artifact.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/netlist/generator.hpp"

namespace sereep {
namespace {

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "sereep_corrupt_" + stem + "_" +
         std::to_string(::getpid()) + ".sca";
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {}
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Loads `path` expecting rejection; returns the diagnostic.
std::string expect_rejected(const std::string& path) {
  try {
    const ArtifactView view(path);
  } catch (const ArtifactError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("artifact '"), std::string::npos)
        << "diagnostic must carry the path: " << what;
    return what;
  }
  ADD_FAILURE() << "corrupt artifact loaded cleanly: " << path;
  return {};
}

/// One intact reference artifact per suite run (s953-sized, with a plan, so
/// every section id 1..18 is present and non-trivial).
const std::vector<std::uint8_t>& golden_bytes() {
  static const std::vector<std::uint8_t>* bytes = [] {
    const std::string path = temp_path("golden");
    write_artifact(path, generate_circuit(iscas89_profile("s953"), 3));
    auto* out = new std::vector<std::uint8_t>(read_bytes(path));
    std::remove(path.c_str());
    return out;
  }();
  return *bytes;
}

// ---- truncation ------------------------------------------------------------

TEST(ArtifactCorruption, TruncationAtEveryBoundaryRejected) {
  const std::vector<std::uint8_t>& good = golden_bytes();
  ASSERT_GT(good.size(), kArtifactHeaderSize);
  ScopedFile f(temp_path("trunc"));
  std::vector<std::size_t> lengths = {0,  1,  63, kArtifactHeaderSize - 1,
                                      kArtifactHeaderSize,
                                      kArtifactHeaderSize + 1,
                                      good.size() / 2, good.size() - 64,
                                      good.size() - 1};
  // ...plus a sweep so no structure-dependent length is missed.
  for (std::size_t len = 0; len < good.size(); len += 97) {
    lengths.push_back(len);
  }
  for (const std::size_t len : lengths) {
    write_bytes(f.path,
                std::vector<std::uint8_t>(good.begin(), good.begin() + len));
    expect_rejected(f.path);
  }
}

TEST(ArtifactCorruption, PeekRejectsTruncatedHeader) {
  const std::vector<std::uint8_t>& good = golden_bytes();
  ScopedFile f(temp_path("peek"));
  write_bytes(f.path,
              std::vector<std::uint8_t>(good.begin(), good.begin() + 64));
  EXPECT_THROW((void)peek_artifact_fingerprint(f.path), ArtifactError);
  EXPECT_THROW((void)artifact_sections(f.path), ArtifactError);
}

TEST(ArtifactCorruption, MissingFileRejectedWithPath) {
  const std::string path = temp_path("nonexistent");
  const std::string what = expect_rejected(path);
  EXPECT_NE(what.find(path), std::string::npos) << what;
}

// ---- per-section damage ----------------------------------------------------

TEST(ArtifactCorruption, ByteFlipInEverySectionNamesTheSection) {
  // The headline diagnostic contract: damage inside section X is reported
  // as section X, by name, so an operator knows whether the circuit
  // structure, the SP table, or just the optional plan is toast.
  const std::vector<std::uint8_t>& good = golden_bytes();
  ScopedFile f(temp_path("flip"));
  write_bytes(f.path, good);
  const std::vector<ArtifactSectionInfo> sections = artifact_sections(f.path);
  ASSERT_GE(sections.size(), 15u);
  for (const ArtifactSectionInfo& sec : sections) {
    ASSERT_GT(sec.size, 0u) << sec.name;
    for (const std::uint64_t where :
         {sec.offset, sec.offset + sec.size / 2, sec.offset + sec.size - 1}) {
      std::vector<std::uint8_t> bad = good;
      ASSERT_LT(where, bad.size());
      bad[where] ^= 0x40;
      write_bytes(f.path, bad);
      const std::string what = expect_rejected(f.path);
      EXPECT_NE(what.find("section '" + sec.name + "'"), std::string::npos)
          << "flip at " << where << " got: " << what;
      EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    }
  }
}

// ---- header damage ---------------------------------------------------------

TEST(ArtifactCorruption, BadMagicRejected) {
  std::vector<std::uint8_t> bad = golden_bytes();
  bad[0] = 'X';
  ScopedFile f(temp_path("magic"));
  write_bytes(f.path, bad);
  const std::string what = expect_rejected(f.path);
  EXPECT_NE(what.find("not a .sca artifact"), std::string::npos) << what;
}

TEST(ArtifactCorruption, ByteSwappedMagicDiagnosedAsEndianness) {
  // A file written on (or by a hypothetical port to) a big-endian host
  // reads back with the magic byte-reversed — that deserves a targeted
  // message, not a generic "bad magic".
  std::vector<std::uint8_t> bad = golden_bytes();
  std::swap(bad[0], bad[3]);
  std::swap(bad[1], bad[2]);
  ScopedFile f(temp_path("endian"));
  write_bytes(f.path, bad);
  const std::string what = expect_rejected(f.path);
  EXPECT_NE(what.find("endian"), std::string::npos) << what;
}

TEST(ArtifactCorruption, FutureVersionRejectedByName) {
  std::vector<std::uint8_t> bad = golden_bytes();
  bad[4] = 0x2A;  // version 42
  bad[5] = 0;
  ScopedFile f(temp_path("version"));
  write_bytes(f.path, bad);
  const std::string what = expect_rejected(f.path);
  EXPECT_NE(what.find("version 42"), std::string::npos) << what;
  EXPECT_NE(what.find("version 1"), std::string::npos)
      << "the message should say what this build CAN read: " << what;
}

TEST(ArtifactCorruption, TamperedHeaderFieldsCaughtByHeaderCrc) {
  // Every load-bearing header field — node count, fingerprint, file size,
  // section count, bucket count, SP bits — is under the header CRC; no
  // single-byte tamper may survive.
  const std::vector<std::uint8_t>& good = golden_bytes();
  ScopedFile f(temp_path("header"));
  for (const std::size_t offset : {8u, 16u, 24u, 32u, 36u, 40u, 48u, 56u,
                                   57u, 60u, 64u, 100u, 127u}) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] ^= 0x01;
    write_bytes(f.path, bad);
    expect_rejected(f.path);
  }
}

TEST(ArtifactCorruption, TamperedSectionTableCaughtByHeaderCrc) {
  // The section table is covered by the header CRC too — redirecting a
  // section offset at intact data would otherwise pass every section CRC.
  const std::vector<std::uint8_t>& good = golden_bytes();
  ScopedFile f(temp_path("table"));
  for (std::size_t entry = 0; entry < 3; ++entry) {
    std::vector<std::uint8_t> bad = good;
    bad[kArtifactHeaderSize + entry * kArtifactSectionEntrySize + 8] ^= 0x40;
    write_bytes(f.path, bad);
    expect_rejected(f.path);
  }
}

TEST(ArtifactCorruption, AppendedGarbageRejected) {
  std::vector<std::uint8_t> bad = golden_bytes();
  bad.insert(bad.end(), 64, 0xAB);
  ScopedFile f(temp_path("appended"));
  write_bytes(f.path, bad);
  const std::string what = expect_rejected(f.path);
  EXPECT_NE(what.find("size"), std::string::npos) << what;
}

// ---- fuzz ------------------------------------------------------------------

TEST(ArtifactCorruption, SeededRandomFlipsNeverCrash) {
  // 300 random single-byte flips anywhere in the file. The contract is NOT
  // that every flip is detected — a flip in alignment padding changes no
  // covered byte and MAY load — but that the outcome is always one of two
  // things: a clean ArtifactError, or a fully-validated view whose
  // fingerprint still matches. Under ASan (CI runs this suite there) any
  // out-of-bounds read a flip could provoke becomes a hard failure.
  const std::vector<std::uint8_t>& good = golden_bytes();
  const CircuitFingerprint want = [&] {
    ScopedFile f(temp_path("fuzzref"));
    write_bytes(f.path, good);
    return peek_artifact_fingerprint(f.path);
  }();
  std::mt19937 rng(0xA51F);  // fixed seed: a failure names its iteration
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  ScopedFile f(temp_path("fuzz"));
  int detected = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[pos(rng)] ^= static_cast<std::uint8_t>(1u << bit(rng));
    write_bytes(f.path, bad);
    try {
      const ArtifactView view(f.path);
      EXPECT_TRUE(view.fingerprint() == want) << "iteration " << i;
    } catch (const ArtifactError&) {
      ++detected;
    }
  }
  // Almost the whole file is CRC-covered; the undetected residue is the
  // padding runs. Anything below this floor means validation went missing.
  EXPECT_GE(detected, 280) << "suspiciously low detection rate";
}

TEST(ArtifactCorruption, SectionListCoversTheFormat) {
  // artifact_sections is the corruption tests' targeting map — pin that it
  // names the load-bearing sections so the flip loop above really visits
  // the circuit structure, the SP table and the plan.
  const std::vector<std::uint8_t>& good = golden_bytes();
  ScopedFile f(temp_path("sections"));
  write_bytes(f.path, good);
  const std::vector<ArtifactSectionInfo> sections = artifact_sections(f.path);
  auto has = [&](const char* name) {
    for (const ArtifactSectionInfo& s : sections) {
      if (s.name == name) return true;
    }
    return false;
  };
  for (const char* name : {"name_blob", "fanin_ids", "fanout_ids",
                           "sp_table", "topo_pos", "plan_members"}) {
    EXPECT_TRUE(has(name)) << name;
  }
  for (const ArtifactSectionInfo& s : sections) {
    EXPECT_EQ(s.offset % kArtifactAlign, 0u)
        << "section '" << s.name << "' is not 64-byte aligned";
  }
}

}  // namespace
}  // namespace sereep
