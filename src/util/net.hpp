// Minimal TCP helpers for the shard transport and the serve daemon — thin
// wrappers over the BSD socket calls so every user gets the same error
// strings, SO_REUSEADDR hygiene, and deadline-bounded connect behavior.
// Frame I/O on the returned fds goes through shard_protocol's
// read_shard_frame/write_shard_frame, which work on any byte stream.
#pragma once

#include <cstdint>
#include <string>

namespace sereep {

/// A "host:port" pair split and strictly validated. Throws
/// std::invalid_argument naming the defect (missing colon, empty host,
/// non-numeric or out-of-range port).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
[[nodiscard]] HostPort parse_host_port(const std::string& spec);

/// Binds + listens on `bind_addr:port` (port 0 = kernel-chosen ephemeral).
/// Returns the listening fd (CLOEXEC); throws std::runtime_error naming the
/// failing call on error.
[[nodiscard]] int tcp_listen(const std::string& bind_addr, std::uint16_t port);

/// The locally-bound port of a listening/connected socket — how callers
/// discover the ephemeral port after tcp_listen(addr, 0).
[[nodiscard]] std::uint16_t tcp_local_port(int fd);

/// Connects to host:port (numeric or resolvable name) with a bounded
/// connect deadline. Returns the connected fd (CLOEXEC, blocking); throws
/// std::runtime_error naming host, port and cause on failure or deadline
/// expiry. timeout_ms <= 0 waits however long the kernel does.
[[nodiscard]] int tcp_connect(const std::string& host, std::uint16_t port,
                              int timeout_ms);

}  // namespace sereep
