// Golden-file regression for the CLI ser/harden output.
//
// `sereep ser --csv` emits Session::ser_csv() verbatim and `sereep harden`
// prints Session::harden_text(); these tests pin both texts on the embedded
// c17 and s27 netlists against files committed under tests/data/, with
// probabilities at full round-trip precision (%.17g). Any drift — a format
// change, a model-constant tweak, or a single ULP of numeric movement in
// the SER fold — fails ctest here instead of silently changing downstream
// rankings and hardening plans.
//
// To regenerate after an INTENTIONAL change (document it in the PR):
//   build/sereep ser c17 --csv=tests/data/ser_c17.golden.csv
//   build/sereep ser s27 --csv=tests/data/ser_s27.golden.csv
//   build/sereep harden c17 > tests/data/harden_c17.golden.txt
//   build/sereep harden s27 > tests/data/harden_s27.golden.txt
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sereep/sereep.hpp"
#include "src/netlist/benchmarks.hpp"

namespace sereep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string golden_path(const char* name) {
  return std::string(SEREEP_SOURCE_DIR) + "/tests/data/" + name;
}

Session session_for(Circuit circuit, const char* engine, unsigned threads) {
  Options options;
  options.engine = engine;
  options.threads = threads;
  return Session(std::move(circuit), std::move(options));
}

TEST(GoldenSer, C17MatchesCommittedCsv) {
  EXPECT_EQ(Session(make_c17()).ser_csv(),
            read_file(golden_path("ser_c17.golden.csv")));
}

TEST(GoldenSer, S27MatchesCommittedCsv) {
  EXPECT_EQ(Session(make_s27()).ser_csv(),
            read_file(golden_path("ser_s27.golden.csv")));
}

TEST(GoldenSer, AllEnginesAndThreadCountsMatchTheGoldens) {
  // `sereep ser --engine=...` must be a pure re-route, and the parallel fold
  // must not let scheduling reach the output bytes.
  const std::string c17 = read_file(golden_path("ser_c17.golden.csv"));
  const std::string s27 = read_file(golden_path("ser_s27.golden.csv"));
  for (const char* engine : {"reference", "compiled", "batched"}) {
    EXPECT_EQ(session_for(make_c17(), engine, 1).ser_csv(), c17) << engine;
    EXPECT_EQ(session_for(make_s27(), engine, 1).ser_csv(), s27) << engine;
  }
  EXPECT_EQ(session_for(make_s27(), "batched", 8).ser_csv(), s27);
}

TEST(GoldenHarden, C17MatchesCommittedText) {
  EXPECT_EQ(Session(make_c17()).harden_text(0.5),
            read_file(golden_path("harden_c17.golden.txt")));
}

TEST(GoldenHarden, S27MatchesCommittedText) {
  EXPECT_EQ(Session(make_s27()).harden_text(0.5),
            read_file(golden_path("harden_s27.golden.txt")));
}

TEST(GoldenHarden, EverySelectedEngineMatchesTheGoldens) {
  const std::string c17 = read_file(golden_path("harden_c17.golden.txt"));
  const std::string s27 = read_file(golden_path("harden_s27.golden.txt"));
  for (const char* engine : {"reference", "compiled", "batched"}) {
    EXPECT_EQ(session_for(make_c17(), engine, 1).harden_text(0.5), c17)
        << engine;
    EXPECT_EQ(session_for(make_s27(), engine, 1).harden_text(0.5), s27)
        << engine;
  }
}

}  // namespace
}  // namespace sereep
