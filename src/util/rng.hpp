// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in sereep (circuit generator, Monte-Carlo signal
// probability, random fault-injection simulation) takes an explicit Rng so a
// run is fully determined by its seeds. We use xoshiro256** (Blackman/Vigna)
// seeded through splitmix64, the standard recipe for expanding a 64-bit seed
// into a full 256-bit state.
#pragma once

#include <cstdint>
#include <limits>

namespace sereep {

/// splitmix64 single step; used for seed expansion and as a cheap mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator so it can
/// be used with <random> distributions, but the helpers below are preferred
/// because their results are bit-identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed'0000'0000'0001ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method,
  /// rejection variant kept simple & portable).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection sampling over the largest multiple of `bound`.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return draw % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli draw with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream; used to give each circuit node or
  /// each Monte-Carlo batch its own stream without correlation.
  constexpr Rng fork() noexcept {
    std::uint64_t s = (*this)();
    return Rng{splitmix64(s)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sereep
