// The four-state error-propagation probability distribution and its symbol
// algebra — the heart of the paper.
//
// While an erroneous value `a` propagates from the error site, every on-path
// signal U carries a discrete distribution over four symbols:
//
//   Pa(U)   — U equals the erroneous value a  (even number of inversions)
//   Pā(U)   — U equals the complement ā       (odd number of inversions)
//   P1(U)   — U is logic 1, error blocked
//   P0(U)   — U is logic 0, error blocked
//
// with Pa + Pā + P0 + P1 = 1. Off-path signals carry Pa = Pā = 0 and
// P1 = SP, P0 = 1 − SP.
//
// A symbol is exactly a boolean function of the unknown bit a: const-0,
// const-1, identity, complement. Gates act pointwise on these functions,
// which gives the complete algebra, e.g. AND(a, ā) = 0, OR(a, ā) = 1,
// XOR(a, a) = 0, XOR(a, 1) = ā — precisely what makes reconvergent error
// paths exact under polarity tracking.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "src/netlist/gate.hpp"

namespace sereep {

/// The four propagation symbols. Encoded as the pair (value at a=0,
/// value at a=1): kZero=(0,0), kOne=(1,1), kA=(0,1), kABar=(1,0).
enum class Sym : std::uint8_t { kZero = 0, kOne = 1, kA = 2, kABar = 3 };
inline constexpr int kSymCount = 4;

/// Value of a symbol for a concrete error bit. kA -> a, kABar -> !a.
[[nodiscard]] constexpr bool sym_value(Sym s, bool a) noexcept {
  switch (s) {
    case Sym::kZero: return false;
    case Sym::kOne:  return true;
    case Sym::kA:    return a;
    case Sym::kABar: return !a;
  }
  return false;
}

/// Builds the symbol from its two concrete values.
[[nodiscard]] constexpr Sym sym_from_values(bool at0, bool at1) noexcept {
  if (!at0 && !at1) return Sym::kZero;
  if (at0 && at1) return Sym::kOne;
  if (!at0 && at1) return Sym::kA;
  return Sym::kABar;
}

/// Pointwise binary combination: evaluates the gate on both branches
/// (a = 0 and a = 1) and re-encodes. kAnd/kOr/kXor only (associative cores);
/// inverted gates fold with the core then invert once.
[[nodiscard]] constexpr Sym sym_combine(GateType core, Sym x, Sym y) noexcept {
  const bool at0 = core == GateType::kAnd ? (sym_value(x, false) && sym_value(y, false))
                  : core == GateType::kOr ? (sym_value(x, false) || sym_value(y, false))
                                          : (sym_value(x, false) != sym_value(y, false));
  const bool at1 = core == GateType::kAnd ? (sym_value(x, true) && sym_value(y, true))
                  : core == GateType::kOr ? (sym_value(x, true) || sym_value(y, true))
                                          : (sym_value(x, true) != sym_value(y, true));
  return sym_from_values(at0, at1);
}

/// Logical complement of a symbol (0<->1, a<->ā).
[[nodiscard]] constexpr Sym sym_not(Sym s) noexcept {
  switch (s) {
    case Sym::kZero: return Sym::kOne;
    case Sym::kOne:  return Sym::kZero;
    case Sym::kA:    return Sym::kABar;
    case Sym::kABar: return Sym::kA;
  }
  return Sym::kZero;
}

/// Distribution over the four symbols.
struct Prob4 {
  double p[kSymCount] = {0, 0, 0, 0};  // indexed by Sym

  [[nodiscard]] constexpr double zero() const noexcept {
    return p[static_cast<int>(Sym::kZero)];
  }
  [[nodiscard]] constexpr double one() const noexcept {
    return p[static_cast<int>(Sym::kOne)];
  }
  [[nodiscard]] constexpr double a() const noexcept {
    return p[static_cast<int>(Sym::kA)];
  }
  [[nodiscard]] constexpr double abar() const noexcept {
    return p[static_cast<int>(Sym::kABar)];
  }

  constexpr double& operator[](Sym s) noexcept { return p[static_cast<int>(s)]; }
  constexpr double operator[](Sym s) const noexcept {
    return p[static_cast<int>(s)];
  }

  /// The distribution at the error site itself: the SEU flipped the node, so
  /// the node carries the erroneous value with certainty.
  [[nodiscard]] static constexpr Prob4 error_site() noexcept {
    Prob4 d;
    d[Sym::kA] = 1.0;
    return d;
  }

  /// Off-path signal with signal probability `sp`: P1 = sp, P0 = 1 − sp.
  [[nodiscard]] static constexpr Prob4 off_path(double sp) noexcept {
    Prob4 d;
    d[Sym::kOne] = sp;
    d[Sym::kZero] = 1.0 - sp;
    return d;
  }

  /// Probability that the signal carries the error in either polarity:
  /// Pa + Pā. This is the EPP mass that reaches an output.
  [[nodiscard]] constexpr double error_mass() const noexcept {
    return a() + abar();
  }

  [[nodiscard]] constexpr double total() const noexcept {
    return p[0] + p[1] + p[2] + p[3];
  }

  /// True iff all entries are within [−tol, 1+tol] and total() ≈ 1.
  [[nodiscard]] bool valid(double tol = 1e-9) const noexcept {
    for (double v : p) {
      if (!(v >= -tol && v <= 1.0 + tol)) return false;
    }
    return std::fabs(total() - 1.0) <= 4 * tol;
  }

  /// Clamps tiny negative round-off to zero and renormalizes.
  [[nodiscard]] Prob4 cleaned() const noexcept {
    Prob4 d = *this;
    double t = 0;
    for (double& v : d.p) {
      if (v < 0) v = 0;
      t += v;
    }
    if (t > 0) {
      for (double& v : d.p) v /= t;
    }
    return d;
  }

  /// Formats as the paper writes it: "0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)".
  [[nodiscard]] std::string to_string(int decimals = 3) const;
};

/// NOT rule of Table 1 (swap 0/1, a/ā).
[[nodiscard]] constexpr Prob4 prob4_not(const Prob4& in) noexcept {
  Prob4 out;
  for (int s = 0; s < kSymCount; ++s) {
    out.p[static_cast<int>(sym_not(static_cast<Sym>(s)))] = in.p[s];
  }
  return out;
}

}  // namespace sereep
