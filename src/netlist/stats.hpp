// Structural circuit statistics.
//
// Used three ways: (1) sanity-reporting in examples and benches, (2) checking
// that generated ISCAS'89-profile circuits actually match their target
// profile, (3) the per-circuit columns of the Table-2 reproduction.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/netlist/circuit.hpp"

namespace sereep {

/// Aggregate structural statistics of a finalized circuit.
struct CircuitStats {
  std::string name;
  std::size_t nodes = 0;        ///< all nodes
  std::size_t inputs = 0;       ///< primary inputs
  std::size_t outputs = 0;      ///< primary outputs
  std::size_t dffs = 0;         ///< flip-flops
  std::size_t gates = 0;        ///< combinational gates
  std::uint32_t depth = 0;      ///< max combinational level
  double avg_fanin = 0.0;       ///< mean gate fanin
  std::size_t max_fanout = 0;   ///< max fanout of any node
  std::size_t fanout_stems = 0; ///< nodes with fanout >= 2
  std::array<std::size_t, kGateTypeCount> type_histogram{};

  /// Renders a one-line summary ("s953: 395 gates, 29 FF, depth 16, ...").
  [[nodiscard]] std::string summary() const;
};

/// Computes statistics for a finalized circuit.
[[nodiscard]] CircuitStats compute_stats(const Circuit& circuit);

}  // namespace sereep
