#include "sereep/session.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

#include "src/artifact/artifact_cache.hpp"
#include "src/artifact/compiled_artifact.hpp"
#include "src/netlist/bench_io.hpp"
#include "src/netlist/benchmarks.hpp"
#include "src/netlist/verilog_io.hpp"
#include "src/sim/fault_injection.hpp"  // error_sites / subsample_sites
#include "src/util/csv.hpp"
#include "src/util/simd.hpp"
#include "src/util/strings.hpp"

namespace sereep {

namespace {

/// %.17g — the round-trip precision every golden CSV is pinned at.
std::string round_trip(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

Circuit load_netlist(const std::string& spec) {
  for (const std::string& name : known_circuit_names()) {
    if (spec == name) return make_circuit(spec);
  }
  if (is_artifact_path(spec)) {
    return ArtifactCache::global().load(spec)->restore_circuit();
  }
  if (spec.ends_with(".v")) return load_verilog_file(spec);
  return load_bench_file(spec);
}

/// The memoized cluster plan behind one stable heap address: deferred
/// planner handles held by engines (EngineContext::planner_source) stay
/// valid across Session moves, and the build-at-most-once counter lives in
/// the (equally stable) BuildCounts block.
struct Session::PlannerCache {
  const CompiledCircuit* compiled = nullptr;
  ConeClusterPlanner::PlanLevel level =
      ConeClusterPlanner::PlanLevel::kTwoLevel;
  BuildCounts* counts = nullptr;
  std::unique_ptr<ConeClusterPlanner> planner;
  // A plan stored in a .sca artifact: handed to the planner so a
  // whole-circuit plan() call at the stored level returns it instead of
  // re-planning (the planner is deterministic, so the copy is exact).
  std::vector<NodeId> preplan_sites;
  std::vector<ConeCluster> preplan_clusters;
  ConeClusterPlanner::PlanLevel preplan_level =
      ConeClusterPlanner::PlanLevel::kTwoLevel;

  const ConeClusterPlanner& get() {
    if (planner == nullptr) {
      planner = std::make_unique<ConeClusterPlanner>(*compiled);
      planner->set_default_level(level);
      if (!preplan_sites.empty()) {
        planner->set_preplanned(preplan_sites, preplan_clusters,
                                preplan_level);
      }
      ++counts->planner;
    }
    return *planner;
  }
};

Session::Session(Circuit circuit, Options options)
    : circuit_(std::make_unique<const Circuit>(std::move(circuit))),
      options_(std::move(options)),
      counts_(std::make_unique<BuildCounts>()) {
  options_.validate();
}

Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

Session Session::open(const std::string& spec, Options options) {
  // Record the spec for the sharded engine's workers: they must load the
  // SAME netlist the session analyses. Sessions built from an in-memory
  // Circuit have no spec, which is exactly what ShardOptions::netlist being
  // empty means.
  if (options.shard.netlist.empty()) options.shard.netlist = spec;
  if (is_artifact_path(spec)) {
    std::shared_ptr<const ArtifactView> artifact =
        ArtifactCache::global().load(spec);
    Session session(artifact->restore_circuit(), std::move(options));
    session.adopt_artifact(std::move(artifact));
    return session;
  }
  return Session(load_netlist(spec), std::move(options));
}

void Session::adopt_artifact(std::shared_ptr<const ArtifactView> artifact) {
  artifact_fingerprint_ = artifact->fingerprint();
  artifact_ = std::move(artifact);
  // Compiled view: borrowed zero-copy from the shared mapping — the point
  // of the artifact. Not counted in BuildCounts: the caching contract's
  // "0 or 1" counts constructions this session performs, and nothing was
  // flattened here.
  compiled_ = std::make_unique<const CompiledCircuit>(
      CompiledCircuit::borrow(artifact_->compiled().view()));
  // The stored SP table is adopted only when it is EXACTLY what this
  // session would compute: same source, bit-identical source probabilities
  // (compared as IEEE bit patterns — the file stores those bits verbatim).
  const SpOptions stored_sp = artifact_->sp_options();
  const SpOptions want_sp = options_.sp.probabilities;
  if (options_.sp.source == SpSource::kParkerMcCluskey &&
      artifact_->sp_is_parker_mccluskey() &&
      std::bit_cast<std::uint64_t>(stored_sp.input_sp) ==
          std::bit_cast<std::uint64_t>(want_sp.input_sp) &&
      std::bit_cast<std::uint64_t>(stored_sp.dff_sp) ==
          std::bit_cast<std::uint64_t>(want_sp.dff_sp)) {
    const std::span<const double> table = artifact_->sp_table();
    sp_ = std::make_unique<const SignalProbabilities>(
        SignalProbabilities{.p1 = {table.begin(), table.end()}});
  }
  // The stored whole-circuit plan seeds the planner cache when the level
  // matches; plan() re-plans for any other site subset or level.
  if (artifact_->has_plan() &&
      artifact_->plan_level() == options_.cluster.level) {
    std::vector<NodeId> plan_sites = error_sites(*circuit_);
    if (plan_sites.size() == artifact_->plan_site_count()) {
      PlannerCache& cache = planner_cache();
      cache.preplan_sites = std::move(plan_sites);
      cache.preplan_clusters = artifact_->plan_clusters();
      cache.preplan_level = artifact_->plan_level();
    }
  }
}

const ShardedEppEngine::Diagnostics* Session::shard_diagnostics()
    const noexcept {
  const auto* sharded = dynamic_cast<const ShardedEppEngine*>(engine_.get());
  return sharded == nullptr ? nullptr : &sharded->last_sweep();
}

void Session::set_options(Options options) {
  options.validate();
  const bool sp_changed =
      options.sp.source != options_.sp.source ||
      options.sp.probabilities.input_sp !=
          options_.sp.probabilities.input_sp ||
      options.sp.probabilities.dff_sp != options_.sp.probabilities.dff_sp ||
      (options.sp.source == SpSource::kMonteCarlo &&
       options.sp.monte_carlo_vectors != options_.sp.monte_carlo_vectors);
  options_ = std::move(options);
  // Always dropped: the engine (binds the SP table, EPP options and — for
  // batched — the planner), the multicycle engine (same bindings plus a
  // model-dependent matrix) and the SER cache (folds model objects that
  // don't support comparison). Never dropped: the compiled view and the site
  // list (pure functions of the immutable circuit).
  engine_.reset();
  multicycle_.reset();
  ser_.reset();
  if (sp_changed) {
    sp_.reset();
    sp_diagnostics_.reset();
  }
  // The cluster plan survives; only its default level follows the options.
  if (planner_cache_ != nullptr) {
    planner_cache_->level = options_.cluster.level;
    if (planner_cache_->planner != nullptr) {
      planner_cache_->planner->set_default_level(options_.cluster.level);
    }
  }
}

void Session::apply_simd() const noexcept {
  if (options_.simd.has_value()) simd::set_enabled(*options_.simd);
}

const CompiledCircuit& Session::compiled() {
  if (compiled_ == nullptr) {
    compiled_ = std::make_unique<const CompiledCircuit>(*circuit_);
    ++counts_->compiled;
  }
  return *compiled_;
}

const SignalProbabilities& Session::sp() {
  if (sp_ == nullptr) {
    SignalProbabilities built;
    switch (options_.sp.source) {
      case SpSource::kParkerMcCluskey:
        built = compiled_parker_mccluskey_sp(compiled(),
                                             options_.sp.probabilities);
        break;
      case SpSource::kSequentialFixedPoint: {
        SequentialSpResult result =
            sequential_fixed_point_sp(*circuit_, options_.sp.probabilities);
        sp_diagnostics_ = SpDiagnostics{.iterations = result.iterations,
                                        .residual = result.residual,
                                        .converged = result.converged};
        built = std::move(result.sp);
        break;
      }
      case SpSource::kMonteCarlo:
        built = monte_carlo_sp(*circuit_, options_.sp.monte_carlo_vectors);
        break;
    }
    sp_ = std::make_unique<const SignalProbabilities>(std::move(built));
    ++counts_->sp;
  }
  return *sp_;
}

Session::PlannerCache& Session::planner_cache() {
  if (planner_cache_ == nullptr) {
    planner_cache_ = std::make_unique<PlannerCache>();
    planner_cache_->compiled = &compiled();
    planner_cache_->level = options_.cluster.level;
    planner_cache_->counts = counts_.get();
  }
  return *planner_cache_;
}

const ConeClusterPlanner& Session::planner() { return planner_cache().get(); }

IEppEngine& Session::engine() {
  if (engine_ == nullptr) {
    EngineContext context;
    context.circuit = circuit_.get();
    context.compiled = &compiled();
    context.sp = &sp();
    // Sweep-capable engines get a DEFERRED handle on the session's plan:
    // built on their first sweep, shared and memoized after that, never
    // built for per-site-only workloads. Sequential engines get nothing.
    if (EngineRegistry::instance().caps(options_.engine).threads) {
      context.planner_source = [cache = &planner_cache()] {
        return &cache->get();
      };
    }
    context.epp = options_.epp;
    context.shard = options_.shard;
    engine_ = EngineRegistry::instance().create(options_.engine, context);
    ++counts_->engine;
  }
  return *engine_;
}

std::span<const NodeId> Session::sites() {
  if (!sites_.has_value()) sites_ = error_sites(*circuit_);
  return *sites_;
}

std::optional<NodeId> Session::find(std::string_view name) const {
  return circuit_->find(name);
}

SiteEpp Session::epp(NodeId site) {
  apply_simd();
  return engine().compute(site);
}

double Session::p_sensitized(NodeId site) {
  apply_simd();
  return engine().p_sensitized(site);
}

std::vector<SiteEpp> Session::sweep() {
  apply_simd();
  return engine().sweep(sites(), options_.threads);
}

std::vector<double> Session::sweep_p_sensitized() {
  apply_simd();
  const std::span<const NodeId> all = sites();
  const std::vector<double> per_site =
      engine().sweep_p_sensitized(all, options_.threads);
  std::vector<double> out(circuit_->node_count(), 0.0);
  for (std::size_t i = 0; i < all.size(); ++i) out[all[i]] = per_site[i];
  return out;
}

const CircuitSer& Session::ser() {
  if (ser_ == nullptr) {
    apply_simd();
    // Folded in bounded slices so peak memory is O(slice) SiteEpp records —
    // the same discipline SerEstimator::estimate() keeps (and the same
    // slice width, so the batched engine's cluster packing matches it too).
    constexpr std::size_t kFoldSlice = 8192;
    const std::span<const NodeId> all = sites();
    const std::vector<NodeId> swept = subsample_sites(
        std::vector<NodeId>(all.begin(), all.end()), options_.ser.max_sites);
    CircuitSer out;
    out.nodes.reserve(swept.size());
    IEppEngine& eng = engine();
    for (std::size_t begin = 0; begin < swept.size(); begin += kFoldSlice) {
      const std::size_t count = std::min(kFoldSlice, swept.size() - begin);
      for (const SiteEpp& epp :
           eng.sweep(std::span(swept).subspan(begin, count),
                     options_.threads)) {
        out.nodes.push_back(node_ser_from_epp(*circuit_, epp,
                                              options_.ser.seu,
                                              options_.ser.latching));
        out.total_ser += out.nodes.back().ser;
      }
    }
    ser_ = std::make_unique<const CircuitSer>(std::move(out));
    ++counts_->ser;
  }
  return *ser_;
}

HardeningPlan Session::harden(double target_reduction) {
  return select_hardening(ser(), target_reduction);
}

MultiCycleEpp Session::multicycle(NodeId site, std::size_t cycles) {
  apply_simd();
  if (multicycle_ == nullptr) {
    multicycle_ = std::make_unique<MultiCycleEppEngine>(
        *circuit_, compiled(), sp(), options_.epp, options_.threads,
        &planner());
    ++counts_->multicycle;
  }
  return multicycle_->compute(site, cycles);
}

std::string Session::sweep_csv() {
  const std::vector<double> p = sweep_p_sensitized();
  CsvWriter csv({"node", "type", "p_sensitized"});
  for (NodeId site : sites()) {
    csv.add_row({circuit_->node(site).name,
                 std::string(gate_type_name(circuit_->type(site))),
                 round_trip(p[site])});
  }
  return csv.str();
}

std::string Session::ser_csv() {
  const CircuitSer& circuit_ser = ser();
  CsvWriter csv(
      {"node", "type", "r_seu", "p_latched", "p_sensitized", "ser"});
  for (const NodeSer& n : circuit_ser.nodes) {
    csv.add_row({circuit_->node(n.node).name,
                 std::string(gate_type_name(circuit_->type(n.node))),
                 round_trip(n.r_seu), round_trip(n.p_latched),
                 round_trip(n.p_sensitized), round_trip(n.ser)});
  }
  return csv.str();
}

std::string Session::harden_text(double target_reduction) {
  return harden_plan_text(*circuit_, harden(target_reduction),
                          target_reduction);
}

std::string harden_plan_text(const Circuit& circuit, const HardeningPlan& plan,
                             double target_reduction) {
  char head[128];
  std::snprintf(head, sizeof head,
                "protect %zu nodes for a %.0f%% reduction (achieved %.1f%%):\n",
                plan.protect.size(), 100 * target_reduction,
                100 * plan.reduction());
  std::string out = head;
  for (NodeId id : plan.protect) {
    out += "  ";
    out += circuit.node(id).name;
    out += "\n";
  }
  return out;
}

}  // namespace sereep
