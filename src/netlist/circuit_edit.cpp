#include "src/netlist/circuit_edit.hpp"

#include <algorithm>
#include <stdexcept>

namespace sereep {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("circuit edit: " + what);
}

}  // namespace

EditBatch Circuit::edit() {
  if (!finalized_) {
    fail("Circuit::edit() requires a finalized circuit (construction-time "
         "changes use the add_* API)");
  }
  return EditBatch(*this);
}

void Circuit::reindex() {
  // Exactly the frozen-index derivation finalize() performs, over the edited
  // adjacency — so an edited circuit is indistinguishable from restore()
  // over the same node table (same Kahn pass, same levels, same depth).
  sources_.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (is_source(nodes_[id].type) || nodes_[id].type == GateType::kDff) {
      sources_.push_back(id);
    }
  }
  sinks_.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].is_primary_output || nodes_[id].type == GateType::kDff) {
      sinks_.push_back(id);
    }
  }
  if (sinks_.empty()) fail("edit left no primary output and no flip-flop");
  depth_ = 0;
  compute_topo_order();
}

EditBatch::EditBatch(EditBatch&& other) noexcept
    : circuit_(other.circuit_),
      result_(std::move(other.result_)),
      dirty_flag_(std::move(other.dirty_flag_)) {
  other.circuit_ = nullptr;
}

EditBatch::~EditBatch() {
  // An abandoned batch must not leave stale frozen indexes behind: ops apply
  // eagerly, so reindex best-effort. Every op preserves acyclicity and
  // arity, so this cannot throw in practice; swallow defensively (a
  // destructor must not).
  if (circuit_ != nullptr && result_.structure_changed) {
    try {
      circuit_->reindex();
    } catch (...) {
    }
  }
}

void EditBatch::require_open(const char* op) const {
  if (circuit_ == nullptr) {
    fail(std::string(op) + ": batch already committed");
  }
}

void EditBatch::mark_dirty(NodeId id) {
  if (dirty_flag_.size() < circuit_->nodes_.size()) {
    dirty_flag_.resize(circuit_->nodes_.size(), 0);
  }
  if (dirty_flag_[id] == 0) {
    dirty_flag_[id] = 1;
    result_.dirty.push_back(id);
  }
}

void EditBatch::retype(NodeId gate, GateType type) {
  require_open("retype");
  Circuit& c = *circuit_;
  if (gate >= c.nodes_.size()) fail("retype: unknown node");
  Node& g = c.nodes_[gate];
  if (!is_combinational(g.type)) {
    fail("retype: '" + g.name + "' is not a combinational gate");
  }
  if (!is_combinational(type)) {
    fail("retype: target type " + std::string(gate_type_name(type)) +
         " is not combinational");
  }
  if (!arity_ok(type, g.fanin.size())) {
    fail("retype: " + std::string(gate_type_name(type)) + " cannot take " +
         std::to_string(g.fanin.size()) + " fanins ('" + g.name + "')");
  }
  g.type = type;
  mark_dirty(gate);
}

void EditBatch::rewire_fanin(NodeId gate, std::size_t slot,
                             NodeId new_source) {
  require_open("rewire");
  Circuit& c = *circuit_;
  if (gate >= c.nodes_.size() || new_source >= c.nodes_.size()) {
    fail("rewire: unknown node");
  }
  Node& g = c.nodes_[gate];
  if (slot >= g.fanin.size()) {
    fail("rewire: '" + g.name + "' has no fanin slot " + std::to_string(slot));
  }
  // A cycle can only form through combinational dependency edges: an edge
  // from a source or a DFF output is available at cycle start, and an edge
  // INTO a DFF (its D pin) is consumed at the capture edge — neither closes
  // a combinational loop. So the check is needed exactly when both ends are
  // combinational: would `gate` reach `new_source` through the combinational
  // core (forward DFS over fanouts that does not expand through DFFs)?
  if (is_combinational(g.type) && is_combinational(c.nodes_[new_source].type)) {
    std::vector<std::uint8_t> seen(c.nodes_.size(), 0);
    std::vector<NodeId> stack{gate};
    seen[gate] = 1;
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (id == new_source) {
        fail("rewire: '" + c.nodes_[new_source].name + "' -> '" + g.name +
             "' would create a combinational cycle");
      }
      if (id != gate && c.nodes_[id].type == GateType::kDff) continue;
      for (NodeId consumer : c.nodes_[id].fanout) {
        if (seen[consumer] == 0) {
          seen[consumer] = 1;
          stack.push_back(consumer);
        }
      }
    }
  }
  const NodeId old = g.fanin[slot];
  auto& old_fanout = c.nodes_[old].fanout;
  // Remove exactly one occurrence (multi-edges are legal).
  const auto it = std::find(old_fanout.begin(), old_fanout.end(), gate);
  if (it != old_fanout.end()) old_fanout.erase(it);
  g.fanin[slot] = new_source;
  c.nodes_[new_source].fanout.push_back(gate);
  mark_dirty(gate);
  // The OLD source is dirty too: a site whose cone reached `gate` only
  // through this edge loses it, and on the post-edit graph that loss is
  // visible only at `old` — dirty-cone invalidation (src/epp/incremental.hpp)
  // walks the edited adjacency, so the detached edge's tail must be in the
  // frontier for such sites to be re-swept.
  mark_dirty(old);
  result_.structure_changed = true;
}

NodeId EditBatch::insert_gate(GateType type, std::string name,
                              std::vector<NodeId> fanin) {
  require_open("insert");
  Circuit& c = *circuit_;
  if (!is_combinational(type)) {
    fail("insert: " + std::string(gate_type_name(type)) +
         " is not a combinational type");
  }
  if (name.empty()) fail("insert: node name must be non-empty");
  if (c.by_name_.contains(name)) {
    fail("insert: duplicate node name '" + name + "'");
  }
  if (!arity_ok(type, fanin.size())) {
    fail("insert: illegal fanin count " + std::to_string(fanin.size()) +
         " for " + std::string(gate_type_name(type)) + " '" + name + "'");
  }
  const NodeId id = static_cast<NodeId>(c.nodes_.size());
  for (NodeId f : fanin) {
    if (f >= id) fail("insert: fanin of '" + name + "' is unknown");
  }
  for (NodeId f : fanin) c.nodes_[f].fanout.push_back(id);
  c.by_name_.emplace(name, id);
  c.nodes_.push_back(Node{type, std::move(name), std::move(fanin), {}, false});
  ++c.gate_count_;
  result_.inserted.push_back(id);
  result_.structure_changed = true;
  mark_dirty(id);
  return id;
}

NodeId EditBatch::protect_tmr(NodeId gate) {
  require_open("tmr");
  Circuit& c = *circuit_;
  if (gate >= c.nodes_.size()) fail("tmr: unknown node");
  if (!is_combinational(c.nodes_[gate].type)) {
    fail("tmr: '" + c.nodes_[gate].name +
         "' is not a combinational gate (only gates are protectable)");
  }
  // Names mirror apply_tmr()'s voter structure; a numeric suffix uniquifies
  // re-protection of the same region (deterministic, first free wins).
  const auto unique_name = [&c](const std::string& base) {
    if (!c.by_name_.contains(base)) return base;
    for (int k = 2;; ++k) {
      std::string candidate = base + "_" + std::to_string(k);
      if (!c.by_name_.contains(candidate)) return candidate;
    }
  };
  const std::string base = c.nodes_[gate].name;
  const GateType type = c.nodes_[gate].type;
  // Consumers BEFORE the voter gates exist — these are what gets respliced.
  const std::vector<NodeId> consumers = c.nodes_[gate].fanout;
  const std::vector<NodeId> fanin = c.nodes_[gate].fanin;

  const NodeId cb = insert_gate(type, unique_name(base + "__tmr_b"), fanin);
  const NodeId cc = insert_gate(type, unique_name(base + "__tmr_c"), fanin);
  const NodeId vab =
      insert_gate(GateType::kAnd, unique_name(base + "__vab"), {gate, cb});
  const NodeId vbc =
      insert_gate(GateType::kAnd, unique_name(base + "__vbc"), {cb, cc});
  const NodeId vac =
      insert_gate(GateType::kAnd, unique_name(base + "__vac"), {gate, cc});
  const NodeId vote = insert_gate(GateType::kOr, unique_name(base + "__vote"),
                                  {vab, vbc, vac});

  // Resplice every pre-existing consumer onto the voter. No cycle check is
  // needed: the voter's ancestors are exactly `gate`'s ancestors plus the new
  // copies, and a consumer that were also an ancestor of `gate` would have
  // been a cycle in the original DAG.
  for (const NodeId consumer : consumers) {
    Node& cons = c.nodes_[consumer];
    bool replaced = false;
    for (NodeId& f : cons.fanin) {
      if (f == gate) {
        f = vote;
        replaced = true;
      }
    }
    if (!replaced) continue;  // multi-edge duplicate already handled
    auto& gate_fanout = c.nodes_[gate].fanout;
    gate_fanout.erase(
        std::remove(gate_fanout.begin(), gate_fanout.end(), consumer),
        gate_fanout.end());
    const std::size_t edges = static_cast<std::size_t>(
        std::count(cons.fanin.begin(), cons.fanin.end(), vote));
    for (std::size_t e = 0; e < edges; ++e) {
      c.nodes_[vote].fanout.push_back(consumer);
    }
    mark_dirty(consumer);
  }
  // A protected primary output observes the voted signal; the marking-order
  // slot in outputs() is transferred in place.
  if (c.nodes_[gate].is_primary_output) {
    c.nodes_[gate].is_primary_output = false;
    c.nodes_[vote].is_primary_output = true;
    std::replace(c.outputs_.begin(), c.outputs_.end(), gate, vote);
  }
  mark_dirty(gate);
  return vote;
}

EditResult EditBatch::commit() {
  require_open("commit");
  if (result_.dirty.empty()) fail("commit: empty batch");
  // A retype-only batch swaps combinational types in place: fanins, the
  // source/sink sets, topo order, levels, and depth are all untouched, so
  // the Kahn re-derivation would rebuild identical tables. Skip it — it is
  // the dominant fixed cost of a single-gate what-if edit.
  if (result_.structure_changed) circuit_->reindex();
  std::sort(result_.dirty.begin(), result_.dirty.end());
  EditResult out = std::move(result_);
  circuit_ = nullptr;
  result_ = {};
  return out;
}

// ---- edit plans ------------------------------------------------------------

namespace {

std::vector<std::string> split_tokens(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

GateType parse_type_or_fail(const std::string& word, const std::string& op) {
  const std::optional<GateType> t = parse_gate_type(word);
  if (!t.has_value() || !is_combinational(*t)) {
    fail(op + ": '" + word + "' is not a combinational gate type");
  }
  return *t;
}

NodeId resolve(const Circuit& circuit, const std::string& name,
               const std::string& op) {
  const std::optional<NodeId> id = circuit.find(name);
  if (!id.has_value()) fail(op + ": unknown node '" + name + "'");
  return *id;
}

}  // namespace

EditPlan parse_edit_spec(std::string_view spec) {
  EditPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = begin;
    while (end < spec.size() && spec[end] != ';' && spec[end] != '\n') ++end;
    const std::vector<std::string> words =
        split_tokens(spec.substr(begin, end - begin));
    begin = end + 1;
    if (words.empty()) continue;
    EditOp op;
    const std::string& verb = words[0];
    if (verb == "retype") {
      if (words.size() != 3) fail("retype takes <node> <TYPE>");
      op.kind = EditOp::Kind::kRetype;
      op.node = words[1];
      op.type = parse_type_or_fail(words[2], "retype");
    } else if (verb == "rewire") {
      if (words.size() != 4) fail("rewire takes <gate> <slot> <source>");
      op.kind = EditOp::Kind::kRewire;
      op.node = words[1];
      std::size_t used = 0;
      unsigned long slot = 0;
      try {
        slot = std::stoul(words[2], &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != words[2].size() || slot > 0xffffu) {
        fail("rewire: bad slot '" + words[2] + "'");
      }
      op.slot = static_cast<std::uint32_t>(slot);
      op.source = words[3];
    } else if (verb == "insert") {
      if (words.size() < 4) fail("insert takes <TYPE> <name> <fanin...>");
      op.kind = EditOp::Kind::kInsert;
      op.type = parse_type_or_fail(words[1], "insert");
      op.name = words[2];
      op.fanin.assign(words.begin() + 3, words.end());
    } else if (verb == "tmr") {
      if (words.size() != 2) fail("tmr takes <gate>");
      op.kind = EditOp::Kind::kTmr;
      op.node = words[1];
    } else {
      fail("unknown op '" + verb +
           "' (expected retype | rewire | insert | tmr)");
    }
    plan.ops.push_back(std::move(op));
  }
  if (plan.ops.empty()) fail("empty edit spec");
  return plan;
}

std::string to_string(const EditPlan& plan) {
  std::string out;
  for (const EditOp& op : plan.ops) {
    if (!out.empty()) out += "; ";
    switch (op.kind) {
      case EditOp::Kind::kRetype:
        out += "retype " + op.node + " " +
               std::string(gate_type_name(op.type));
        break;
      case EditOp::Kind::kRewire:
        out += "rewire " + op.node + " " + std::to_string(op.slot) + " " +
               op.source;
        break;
      case EditOp::Kind::kInsert:
        out += "insert " + std::string(gate_type_name(op.type)) + " " +
               op.name;
        for (const std::string& f : op.fanin) out += " " + f;
        break;
      case EditOp::Kind::kTmr:
        out += "tmr " + op.node;
        break;
    }
  }
  return out;
}

EditResult apply_edit_plan(Circuit& circuit, const EditPlan& plan) {
  if (plan.ops.empty()) fail("empty edit plan");
  EditBatch batch = circuit.edit();
  for (const EditOp& op : plan.ops) {
    switch (op.kind) {
      case EditOp::Kind::kRetype:
        batch.retype(resolve(circuit, op.node, "retype"), op.type);
        break;
      case EditOp::Kind::kRewire:
        batch.rewire_fanin(resolve(circuit, op.node, "rewire"), op.slot,
                           resolve(circuit, op.source, "rewire"));
        break;
      case EditOp::Kind::kInsert: {
        std::vector<NodeId> fanin;
        fanin.reserve(op.fanin.size());
        for (const std::string& f : op.fanin) {
          fanin.push_back(resolve(circuit, f, "insert"));
        }
        batch.insert_gate(op.type, op.name, std::move(fanin));
        break;
      }
      case EditOp::Kind::kTmr:
        batch.protect_tmr(resolve(circuit, op.node, "tmr"));
        break;
    }
  }
  return batch.commit();
}

}  // namespace sereep
