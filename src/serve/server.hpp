// `sereep serve` — a long-lived analysis daemon holding hot Sessions.
//
// A Session's expensive artifacts (compiled view, SP table, cluster plan,
// engine) are memoized per netlist; the CLI rebuilds them from scratch on
// every invocation. The serve daemon amortizes that: it keeps an LRU-bounded
// cache of open Sessions keyed by netlist spec and answers sweep / SER /
// harden / per-site requests over the shard wire framing
// (src/serve/serve_protocol.hpp), so repeated queries against the same
// design pay the build cost once. Responses are the raw bytes of the same
// renderings the in-process Session produces — byte-identical by
// construction, pinned by the loopback differential tests (tests/serve/).
//
// Concurrency model: one detached thread per accepted connection. The cache
// mutex is held only for lookup / insert / evict; each cached Session has
// its OWN mutex held for the duration of one computation, so two clients
// querying DIFFERENT netlists compute concurrently while two querying the
// same netlist serialize (a Session is not internally thread-safe). Session
// construction happens OUTSIDE the cache lock (it can take seconds on a big
// design), with a re-check on insert so a racing builder adopts the winner
// instead of double-caching.
//
// Failure handling mirrors the supervisor's loud-error discipline:
//   - framing-level garbage (bad magic/version, implausible length, CRC
//     mismatch, truncated frame, non-kRequest type, malformed request
//     payload) -> best-effort kError naming the cause, then CLOSE the
//     connection — the stream can no longer be trusted;
//   - semantic errors (unloadable netlist, unknown node, invalid target)
//     -> kError naming the cause, connection STAYS OPEN for more requests;
//   - a connection idle past request_timeout_ms is closed (bounded-resource
//     rule — the protocol-fuzz suite hammers all of these).
//
// SECURITY: the protocol is unauthenticated and the netlist field names
// paths the SERVER will open. Bind to loopback (the default) or run only on
// trusted networks. See README.md "Distributed & server mode".
#pragma once

#include <cstdint>
#include <string>

namespace sereep {

/// `sereep serve` configuration (the --port/--bind/--sessions/--threads/
/// --request-timeout-ms flags).
struct ServeConfig {
  std::string bind = "127.0.0.1";  ///< loopback by default — see SECURITY
  std::uint16_t port = 0;          ///< 0 = kernel-chosen ephemeral
  /// LRU capacity of the Session cache: the N most recently requested
  /// netlists stay hot; the N+1st request evicts the coldest.
  std::size_t max_sessions = 8;
  unsigned threads = 1;  ///< Options::threads for every cached Session
  /// Per-connection inter-byte read deadline AND idle cap, milliseconds.
  /// 0 disables (a debugger-friendly foot-gun; the CLI default is 10 s).
  unsigned request_timeout_ms = 10'000;
};

/// Binds `config.bind:config.port`, prints
/// "sereep serve listening on HOST:PORT\n" to stdout (the line tests and
/// scripts parse for the ephemeral port), then accepts connections forever.
/// Returns only on a fatal setup error (non-zero), logging to stderr.
int run_serve(const ServeConfig& config);

}  // namespace sereep
