// CRC-32 (the artifact format's checksum) pinned against a bit-at-a-time
// reference. The production routine has three regimes — byte tail, 8-byte
// slicing, and the PCLMUL folding fast path that engages at >= 128 bytes on
// x86 — and every section/whole-file checksum in a .sca depends on all
// three agreeing exactly, so the sweep below crosses each regime boundary
// and every head alignment.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/util/crc32.hpp"

namespace sereep {
namespace {

// The defining bit-serial form of reflected CRC-32 (poly 0xedb88320) — slow
// and obviously correct, the oracle for every optimized regime.
std::uint32_t reference_crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : data) {
    c ^= b;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
  }
  return c ^ 0xffffffffu;
}

TEST(Crc32, KnownVectors) {
  // The catalogued check value for this polynomial.
  const char* check = "123456789";
  EXPECT_EQ(crc32(std::span(reinterpret_cast<const std::uint8_t*>(check), 9)),
            0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
  const std::uint8_t zero[32] = {};
  EXPECT_EQ(crc32(std::span(zero, 32)), reference_crc32(std::span(zero, 32)));
}

TEST(Crc32, EveryRegimeMatchesTheReference) {
  std::mt19937 rng(0xc5c32u);
  std::vector<std::uint8_t> buf(4096 + 64);
  for (std::uint8_t& b : buf) b = static_cast<std::uint8_t>(rng());
  // Sizes straddling the byte-tail / slicing / folding boundaries, plus a
  // sweep through every residue mod 16 (the folding granularity).
  std::vector<std::size_t> sizes = {0,  1,   7,   8,    9,    63,  64,
                                    65, 127, 128, 129,  191,  192, 255,
                                    256, 1000, 2048, 4095, 4096};
  for (std::size_t n = 128; n < 160; ++n) sizes.push_back(n);
  for (const std::size_t n : sizes) {
    const std::span<const std::uint8_t> s(buf.data(), n);
    EXPECT_EQ(crc32(s), reference_crc32(s)) << "size " << n;
  }
}

TEST(Crc32, EveryHeadAlignmentMatchesTheReference) {
  // mmap'd section starts are 64-byte aligned but callers also checksum the
  // header and arbitrary subranges; the routine must be alignment-blind.
  std::mt19937 rng(0xa119u);
  std::vector<std::uint8_t> buf(1024 + 16);
  for (std::uint8_t& b : buf) b = static_cast<std::uint8_t>(rng());
  for (std::size_t off = 0; off < 16; ++off) {
    const std::span<const std::uint8_t> s(buf.data() + off, 1024);
    EXPECT_EQ(crc32(s), reference_crc32(s)) << "offset " << off;
  }
}

}  // namespace
}  // namespace sereep
