// Structural Verilog I/O for the gate-level subset sereep uses.
//
// The writer emits a synthesizable structural module: primitive gate
// instances (and/nand/or/nor/xor/xnor/not/buf) with positional ports
// (output first, per the Verilog-2001 primitive convention) and
// `sereep_dff` cell instances with named ports (.Q, .D) for state bits.
// Netlist names that are not valid Verilog identifiers (ISCAS names are
// often bare numbers) are emitted as escaped identifiers (`\10 `).
//
// The reader parses exactly that subset back — plus `//` and `/* */`
// comments, multi-bit-free port lists, and any module name — so
// parse_verilog(write_verilog(c)) reproduces the circuit. It also accepts
// DFF cell names commonly found in the wild (dff, DFF, DFFX1, FD1, ...)
// with .D/.Q named connections.
#pragma once

#include <string>
#include <string_view>

#include "src/netlist/circuit.hpp"

namespace sereep {

/// Serializes the circuit as a structural Verilog module.
[[nodiscard]] std::string write_verilog(const Circuit& circuit);

/// Parses a structural Verilog module into a finalized Circuit. Throws
/// std::runtime_error with a line-numbered diagnostic on malformed or
/// out-of-subset input.
[[nodiscard]] Circuit parse_verilog(std::string_view text);

/// File helpers.
[[nodiscard]] Circuit load_verilog_file(const std::string& path);
bool save_verilog_file(const Circuit& circuit, const std::string& path);

}  // namespace sereep
