// ShardedEppEngine — the multi-process sweep tier ("sharded" registry key).
//
// sweep()/sweep_p_sensitized() partition the cone-cluster plan into N shards
// (shard_plan.hpp — whole clusters, biggest mass first, the same cost model
// the in-process work stealer uses) and fan them out to worker processes:
// each worker is a `sereep worker --netlist=...` instance that loads the
// netlist, receives its assignment over stdin (shard_protocol.hpp — the
// parent's SP table travels with it, so workers never recompute SPs), sweeps
// its sites with the batched engine, and streams SiteEpp records back over
// stdout. The parent scatters every record into the caller's site order, so
// the merged result is BIT-FOR-BIT identical to an in-process batched sweep
// — per-site values are pure functions of (circuit, SP, EPP options),
// independent of clustering, threading and sharding; the engine-equivalence
// tests pin this with EXPECT_EQ.
//
// Failure contract: a worker that exits, is killed, or streams a short /
// malformed / miscounted result set raises std::runtime_error naming the
// shard — NEVER a silent partial sweep. In-process fallback exists only for
// "sharding unavailable" configurations (no worker binary / no loadable
// netlist spec) and only when ShardOptions::fallback_to_in_process opts in;
// see the policy note there.
//
// Per-site queries (compute / p_sensitized) never fork — a process round
// trip per site would be absurd — they run the in-process compiled engine,
// which is bit-identical anyway.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sereep/engine.hpp"
#include "src/epp/compiled_epp.hpp"

namespace sereep {

/// IEppEngine over worker processes. Construct through the registry
/// ("sharded") or directly from an EngineContext whose `shard` layer names
/// the worker binary and netlist spec.
class ShardedEppEngine final : public IEppEngine {
 public:
  /// What the last sweep actually did — surfaced through
  /// Session::shard_diagnostics() so a deployment can verify its sweeps
  /// really fan out (and tests can pin the fallback policy).
  struct Diagnostics {
    std::size_t sweeps = 0;           ///< sweeps served so far
    unsigned workers_spawned = 0;     ///< processes forked by the last sweep
    std::vector<std::size_t> shard_sites;  ///< per-shard site counts
    bool in_process = false;          ///< last sweep ran without forking
  };

  explicit ShardedEppEngine(const EngineContext& context);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sharded";
  }
  [[nodiscard]] EngineCaps caps() const noexcept override {
    return {.threads = true, .simd = true, .processes = true};
  }

  [[nodiscard]] SiteEpp compute(NodeId site) override {
    return single_.compute(site);
  }
  [[nodiscard]] double p_sensitized(NodeId site) override {
    return single_.p_sensitized(site);
  }

  [[nodiscard]] std::vector<SiteEpp> sweep(std::span<const NodeId> sites,
                                           unsigned threads) override;
  [[nodiscard]] std::vector<double> sweep_p_sensitized(
      std::span<const NodeId> sites, unsigned threads) override;

  [[nodiscard]] const Diagnostics& last_sweep() const noexcept {
    return diagnostics_;
  }

 private:
  /// The common sweep body; p_only drops per-sink payloads on the wire.
  [[nodiscard]] std::vector<SiteEpp> run(std::span<const NodeId> sites,
                                         unsigned threads, bool p_only);

  /// Fans `sites` out across worker processes (the tentpole path). Throws
  /// on any worker failure.
  [[nodiscard]] std::vector<SiteEpp> run_sharded(std::span<const NodeId> sites,
                                                 unsigned threads,
                                                 bool p_only);

  /// In-process batched sweep — the fallback and the shards==1 path.
  [[nodiscard]] std::vector<SiteEpp> run_in_process(
      std::span<const NodeId> sites, unsigned threads, bool p_only);

  [[nodiscard]] const ConeClusterPlanner* resolve_planner();

  const CompiledCircuit& compiled_;
  const SignalProbabilities& sp_;
  EppOptions epp_;
  ShardOptions shard_;
  const ConeClusterPlanner* planner_;  ///< may arrive lazily
  std::function<const ConeClusterPlanner*()> planner_source_;
  std::unique_ptr<ConeClusterPlanner> owned_planner_;  ///< when neither given
  CompiledEppEngine single_;  ///< per-site queries (never fork)
  Diagnostics diagnostics_;
};

/// The worker side: reads one kJob frame from `in_fd`, loads `netlist_spec`,
/// computes the assigned sites with the batched engine, and streams
/// kResults/kDone frames to `out_fd` (kError + non-zero return on failure).
/// `sereep worker --netlist=SPEC` is a thin wrapper over this. The
/// SEREEP_WORKER_FAIL_AFTER environment variable (test-only failure
/// injection) makes the worker die after streaming that many result frames.
int run_shard_worker(const std::string& netlist_spec, int in_fd, int out_fd);

}  // namespace sereep
