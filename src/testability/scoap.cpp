#include "src/testability/scoap.hpp"

#include <algorithm>
#include <cassert>

namespace sereep {

namespace {

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
  return s >= kScoapInfinity ? kScoapInfinity : static_cast<std::uint32_t>(s);
}

}  // namespace

ScoapMeasures compute_scoap(const Circuit& circuit) {
  assert(circuit.finalized());
  const std::size_t n = circuit.node_count();
  ScoapMeasures m;
  m.cc0.assign(n, kScoapInfinity);
  m.cc1.assign(n, kScoapInfinity);
  m.co.assign(n, kScoapInfinity);

  // ---- Controllability: forward topological pass -------------------------
  for (NodeId id : circuit.topo_order()) {
    const Node& node = circuit.node(id);
    switch (node.type) {
      case GateType::kInput:
        m.cc0[id] = 1;
        m.cc1[id] = 1;
        break;
      case GateType::kConst0:
        m.cc0[id] = 0;  // already 0; the 1 value is unreachable
        break;
      case GateType::kConst1:
        m.cc1[id] = 0;
        break;
      case GateType::kDff: {
        // State bit: one extra cycle on top of driving the D pin. The D pin
        // may settle later in the order (feedback), so DFF controllability
        // is refined in the fixed-point loop below; seed with the PI-like
        // cost so the loop starts feasible.
        m.cc0[id] = 2;
        m.cc1[id] = 2;
        break;
      }
      case GateType::kBuf:
        m.cc0[id] = sat_add(m.cc0[node.fanin[0]], 1);
        m.cc1[id] = sat_add(m.cc1[node.fanin[0]], 1);
        break;
      case GateType::kNot:
        m.cc0[id] = sat_add(m.cc1[node.fanin[0]], 1);
        m.cc1[id] = sat_add(m.cc0[node.fanin[0]], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        // AND: 1 needs all inputs 1; 0 needs the cheapest single 0.
        std::uint32_t all1 = 1, min0 = kScoapInfinity;
        for (NodeId f : node.fanin) {
          all1 = sat_add(all1, m.cc1[f]);
          min0 = std::min(min0, m.cc0[f]);
        }
        const std::uint32_t c1 = all1;
        const std::uint32_t c0 = sat_add(min0, 1);
        m.cc1[id] = node.type == GateType::kAnd ? c1 : c0;
        m.cc0[id] = node.type == GateType::kAnd ? c0 : c1;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint32_t all0 = 1, min1 = kScoapInfinity;
        for (NodeId f : node.fanin) {
          all0 = sat_add(all0, m.cc0[f]);
          min1 = std::min(min1, m.cc1[f]);
        }
        const std::uint32_t c0 = all0;
        const std::uint32_t c1 = sat_add(min1, 1);
        m.cc0[id] = node.type == GateType::kOr ? c0 : c1;
        m.cc1[id] = node.type == GateType::kOr ? c1 : c0;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Parity: cost of cheapest even/odd assignment, folded pairwise.
        std::uint32_t even = 0, odd = kScoapInfinity;
        for (NodeId f : node.fanin) {
          const std::uint32_t new_even =
              std::min(sat_add(even, m.cc0[f]), sat_add(odd, m.cc1[f]));
          const std::uint32_t new_odd =
              std::min(sat_add(even, m.cc1[f]), sat_add(odd, m.cc0[f]));
          even = new_even;
          odd = new_odd;
        }
        const std::uint32_t c0 = sat_add(even, 1);  // parity 0
        const std::uint32_t c1 = sat_add(odd, 1);
        m.cc0[id] = node.type == GateType::kXor ? c0 : c1;
        m.cc1[id] = node.type == GateType::kXor ? c1 : c0;
        break;
      }
    }
  }
  // Refine DFF controllabilities to the fixed point (feedback loops can
  // lower the seed): a few passes suffice because costs only decrease.
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    for (NodeId ff : circuit.dffs()) {
      const NodeId d = circuit.fanin(ff)[0];
      const std::uint32_t c0 = sat_add(m.cc0[d], 1);
      const std::uint32_t c1 = sat_add(m.cc1[d], 1);
      if (c0 < m.cc0[ff] || c1 < m.cc1[ff]) {
        m.cc0[ff] = std::min(m.cc0[ff], c0);
        m.cc1[ff] = std::min(m.cc1[ff], c1);
        changed = true;
      }
    }
    if (!changed) break;
    // Re-run the combinational pass with improved state costs.
    for (NodeId id : circuit.topo_order()) {
      const Node& node = circuit.node(id);
      if (!is_combinational(node.type)) continue;
      // Recompute with the same rules as above via a tiny re-dispatch.
      switch (node.type) {
        case GateType::kBuf:
          m.cc0[id] = sat_add(m.cc0[node.fanin[0]], 1);
          m.cc1[id] = sat_add(m.cc1[node.fanin[0]], 1);
          break;
        case GateType::kNot:
          m.cc0[id] = sat_add(m.cc1[node.fanin[0]], 1);
          m.cc1[id] = sat_add(m.cc0[node.fanin[0]], 1);
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          std::uint32_t all1 = 1, min0 = kScoapInfinity;
          for (NodeId f : node.fanin) {
            all1 = sat_add(all1, m.cc1[f]);
            min0 = std::min(min0, m.cc0[f]);
          }
          const std::uint32_t c1 = all1;
          const std::uint32_t c0 = sat_add(min0, 1);
          m.cc1[id] = node.type == GateType::kAnd ? c1 : c0;
          m.cc0[id] = node.type == GateType::kAnd ? c0 : c1;
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          std::uint32_t all0 = 1, min1 = kScoapInfinity;
          for (NodeId f : node.fanin) {
            all0 = sat_add(all0, m.cc0[f]);
            min1 = std::min(min1, m.cc1[f]);
          }
          const std::uint32_t c0 = all0;
          const std::uint32_t c1 = sat_add(min1, 1);
          m.cc0[id] = node.type == GateType::kOr ? c0 : c1;
          m.cc1[id] = node.type == GateType::kOr ? c1 : c0;
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          std::uint32_t even = 0, odd = kScoapInfinity;
          for (NodeId f : node.fanin) {
            const std::uint32_t new_even =
                std::min(sat_add(even, m.cc0[f]), sat_add(odd, m.cc1[f]));
            const std::uint32_t new_odd =
                std::min(sat_add(even, m.cc1[f]), sat_add(odd, m.cc0[f]));
            even = new_even;
            odd = new_odd;
          }
          const std::uint32_t c0 = sat_add(even, 1);
          const std::uint32_t c1 = sat_add(odd, 1);
          m.cc0[id] = node.type == GateType::kXor ? c0 : c1;
          m.cc1[id] = node.type == GateType::kXor ? c1 : c0;
          break;
        }
        default:
          break;
      }
    }
  }

  // ---- Observability: backward pass ---------------------------------------
  const auto order = circuit.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    std::uint32_t best = kScoapInfinity;
    if (circuit.is_primary_output(id)) best = 0;
    if (circuit.type(id) == GateType::kDff) best = std::min(best, 0u);
    for (NodeId c : circuit.fanout(id)) {
      const Node& consumer = circuit.node(c);
      std::uint32_t through;
      if (consumer.type == GateType::kDff) {
        through = 1;  // captured next cycle
      } else {
        std::uint32_t side = 1;
        switch (consumer.type) {
          case GateType::kAnd:
          case GateType::kNand:
            for (NodeId f : consumer.fanin) {
              if (f != id) side = sat_add(side, m.cc1[f]);
            }
            break;
          case GateType::kOr:
          case GateType::kNor:
            for (NodeId f : consumer.fanin) {
              if (f != id) side = sat_add(side, m.cc0[f]);
            }
            break;
          case GateType::kXor:
          case GateType::kXnor:
            for (NodeId f : consumer.fanin) {
              if (f != id) side = sat_add(side, std::min(m.cc0[f], m.cc1[f]));
            }
            break;
          default:
            break;  // NOT/BUF: side stays 1
        }
        through = sat_add(m.co[c], side);
      }
      best = std::min(best, through);
    }
    m.co[id] = best;
  }
  return m;
}

std::vector<std::uint32_t> scoap_detect_cost(const ScoapMeasures& measures) {
  std::vector<std::uint32_t> cost(measures.co.size());
  for (std::size_t i = 0; i < cost.size(); ++i) {
    cost[i] = sat_add(measures.co[i],
                      std::min(measures.cc0[i], measures.cc1[i]));
  }
  return cost;
}

}  // namespace sereep
