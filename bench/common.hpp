// Shared helpers for the bench binaries: a minimal --flag=value parser and
// common formatting.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace sereep::bench {

/// Minimal command-line flags: --name=value or --name value; bare --name is
/// boolean true.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        kv_.emplace_back(std::string(arg.substr(0, eq)),
                         std::string(arg.substr(eq + 1)));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        kv_.emplace_back(std::string(arg), std::string(argv[++i]));
      } else {
        kv_.emplace_back(std::string(arg), "1");
      }
    }
  }

  [[nodiscard]] bool has(std::string_view name) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return true;
    }
    return false;
  }

  [[nodiscard]] std::string get(std::string_view name,
                                std::string fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return v;
    }
    return fallback;
  }

  [[nodiscard]] long get_int(std::string_view name, long fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return std::strtol(v.c_str(), nullptr, 10);
    }
    return fallback;
  }

  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return std::strtod(v.c_str(), nullptr);
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace sereep::bench
